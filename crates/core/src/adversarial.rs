//! Adversarial scenario search (PISA-style): objectives and the
//! simulated-annealing driver.
//!
//! Every study in this repo so far *averages* over random scenarios and
//! finds the paper's σ/lateness/1−A metric cluster intact. Following PISA
//! (arXiv 2403.07120), this module instead *searches* scenario space for
//! instances that maximize disagreement — between robustness metrics, or
//! between heuristics. The moving parts:
//!
//! * [`Objective`] — a score over one [`Scenario`], computed from a full
//!   [`StudyBuilder`] run (random schedules + streaming accumulators) with
//!   common random numbers: every evaluation in a chain uses the same
//!   study seed, so score differences come from the scenario, not from
//!   schedule-sampling noise. The registry ([`objective_registry`] /
//!   [`objective_by_name`]) mirrors the evaluator and drop-policy
//!   registries:
//!   - `cluster-deficit` — `1 − min(ρ(σ, lateness), ρ(σ, 1−A))` over the
//!     streamed Pearson matrix: how far the paper's headline equivalence
//!     cluster is from coherence. A score above `1 − CLUSTER_THRESHOLD`
//!     is a counterexample to the cluster.
//!   - `rank-gap` — `1 − ρ_s(σ, R(γ))` over the exact rank reservoir: how
//!     far the makespan-std ranking drifts from the relative-probability
//!     ranking.
//!   - `heuristic-regret` — the relative `avg_makespan` gap between HEFT
//!     and BIL: scenarios where the two heuristics genuinely disagree.
//! * [`anneal`] — a Metropolis chain over [`SearchPoint`]s with geometric
//!   cooling. Moves are drawn from the perturbation registry
//!   (`robusched_stochastic::perturb`); everything is a pure function of
//!   the chain seed, so a chain re-run reproduces bit for bit, and
//!   *restarts* are simply independent chains with derived seeds (the
//!   `ext-adversarial` study shards them across scoped threads).
//!
//! ## Degeneracy guard
//!
//! [`StreamingMoments::pearson`] returns `0.0` for a degenerate
//! (zero-variance) column — honest for reporting, but fatal for search:
//! a scenario whose 1−A column saturates (every schedule hits or misses
//! the deadline) would fake a perfect cluster break. Objectives therefore
//! check the relative spread of every column they correlate and return
//! [`f64::NEG_INFINITY`] when one is degenerate; the Metropolis rule then
//! never accepts such a point.

use crate::metrics::metric_index;
use crate::streaming::StreamingMoments;
use crate::study::{StudyBuilder, StudyError, StudyResult};
use robusched_platform::Scenario;
use robusched_randvar::{derive_seed, SplitMix64};
use robusched_stochastic::perturb::{
    perturbation_registry, replayable_perturbations, Perturbation, SearchPoint,
};

/// The shared coherence threshold of the extension studies: a paper-cluster
/// pairwise Pearson correlation below this counts as a cluster break.
pub const CLUSTER_THRESHOLD: f64 = 0.9;

/// One objective evaluation's outcome.
#[derive(Debug, Clone)]
pub struct ObjectiveReport {
    /// The objective's score (higher = more adversarial);
    /// [`f64::NEG_INFINITY`] for degenerate scenarios (see the module
    /// docs).
    pub score: f64,
    /// Streamed Pearson ρ(σ, avg_lateness) — the first paper-cluster pair,
    /// reported by every objective for the gallery verdict.
    pub p_std_lateness: f64,
    /// Streamed Pearson ρ(σ, 1−A) — the second paper-cluster pair.
    pub p_std_absprob: f64,
    /// Objective-specific detail (e.g. the raw Spearman value, the two
    /// heuristic makespans), `key=value` separated by spaces.
    pub detail: String,
}

impl ObjectiveReport {
    /// Whether this evaluation certifies a paper-cluster break: one of the
    /// two cluster correlations fell below [`CLUSTER_THRESHOLD`] on a
    /// non-degenerate scenario.
    pub fn cluster_broken(&self) -> bool {
        self.score.is_finite() && self.p_std_lateness.min(self.p_std_absprob) < CLUSTER_THRESHOLD
    }
}

/// A score over one scenario, built from a study run. Object-safe; the
/// annealing driver holds a `&dyn Objective`.
pub trait Objective: Send + Sync {
    /// Registry name (e.g. `"cluster-deficit"`).
    fn name(&self) -> &'static str;

    /// Evaluates `scenario` with `schedules` random schedules under
    /// `seed`. Deterministic in its inputs (single-threaded study run).
    fn evaluate(
        &self,
        scenario: &Scenario,
        schedules: usize,
        seed: u64,
    ) -> Result<ObjectiveReport, StudyError>;
}

/// Runs the shared single-threaded study: `schedules` random schedules,
/// classic evaluator, exact rank reservoir, optional heuristics.
fn run_study(
    scenario: &Scenario,
    schedules: usize,
    seed: u64,
    heuristics: &[&str],
) -> Result<StudyResult, StudyError> {
    StudyBuilder::new(scenario)
        .random_schedules(schedules)
        .seed(seed)
        .threads(1)
        .heuristics(heuristics)
        .evaluator_named("classic")
        .reservoir_capacity(schedules.max(2))
        .run()
}

/// Whether every listed metric column has a non-trivial relative spread
/// (std above ~1e-6 of its scale) — the degeneracy guard of the module
/// docs.
fn columns_non_degenerate(m: &StreamingMoments, columns: &[usize]) -> bool {
    columns.iter().all(|&k| {
        let var = m.covariance(k, k);
        let scale = 1.0 + m.mean(k).abs();
        var.is_finite() && var > (1e-6 * scale) * (1e-6 * scale)
    })
}

/// The two paper-cluster Pearson correlations `(ρ(σ, lateness), ρ(σ, 1−A))`
/// from a study's streamed moments.
fn cluster_pair(res: &StudyResult) -> (f64, f64) {
    let p = res.pearson_streamed();
    let (i_std, i_lat, i_abs) = (
        metric_index("makespan_std"),
        metric_index("avg_lateness"),
        metric_index("abs_prob"),
    );
    (p.get(i_std, i_lat), p.get(i_std, i_abs))
}

/// `cluster-deficit`: how far the σ/lateness/1−A cluster is from
/// coherence (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterDeficit;

impl Objective for ClusterDeficit {
    fn name(&self) -> &'static str {
        "cluster-deficit"
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        schedules: usize,
        seed: u64,
    ) -> Result<ObjectiveReport, StudyError> {
        let res = run_study(scenario, schedules, seed, &[])?;
        let (p_lat, p_abs) = cluster_pair(&res);
        let columns = [
            metric_index("makespan_std"),
            metric_index("avg_lateness"),
            metric_index("abs_prob"),
        ];
        let score = if columns_non_degenerate(&res.moments, &columns) {
            1.0 - p_lat.min(p_abs)
        } else {
            f64::NEG_INFINITY
        };
        Ok(ObjectiveReport {
            score,
            p_std_lateness: p_lat,
            p_std_absprob: p_abs,
            detail: format!("min_pearson={}", p_lat.min(p_abs)),
        })
    }
}

/// `rank-gap`: Spearman drift between the σ and R(γ) rankings (see the
/// module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct RankGap;

impl Objective for RankGap {
    fn name(&self) -> &'static str {
        "rank-gap"
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        schedules: usize,
        seed: u64,
    ) -> Result<ObjectiveReport, StudyError> {
        let res = run_study(scenario, schedules, seed, &[])?;
        let (p_lat, p_abs) = cluster_pair(&res);
        let (i_std, i_rel) = (metric_index("makespan_std"), metric_index("rel_prob"));
        let spearman = res.spearman_streamed().get(i_std, i_rel);
        let score = if columns_non_degenerate(&res.moments, &[i_std, i_rel]) {
            1.0 - spearman
        } else {
            f64::NEG_INFINITY
        };
        Ok(ObjectiveReport {
            score,
            p_std_lateness: p_lat,
            p_std_absprob: p_abs,
            detail: format!("spearman_std_relprob={spearman}"),
        })
    }
}

/// `heuristic-regret`: relative `avg_makespan` gap between HEFT and BIL
/// (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicRegret;

impl Objective for HeuristicRegret {
    fn name(&self) -> &'static str {
        "heuristic-regret"
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        schedules: usize,
        seed: u64,
    ) -> Result<ObjectiveReport, StudyError> {
        let res = run_study(scenario, schedules, seed, &["HEFT", "BIL"])?;
        let (p_lat, p_abs) = cluster_pair(&res);
        let heft = res.heuristics[0].1.expected_makespan;
        let bil = res.heuristics[1].1.expected_makespan;
        let best = heft.min(bil);
        let score = if best > 0.0 && heft.is_finite() && bil.is_finite() {
            (heft - bil).abs() / best
        } else {
            f64::NEG_INFINITY
        };
        Ok(ObjectiveReport {
            score,
            p_std_lateness: p_lat,
            p_std_absprob: p_abs,
            detail: format!("heft={heft} bil={bil}"),
        })
    }
}

/// All registered objectives, in a fixed order.
pub fn objective_registry() -> Vec<Box<dyn Objective>> {
    vec![
        Box::new(ClusterDeficit),
        Box::new(RankGap),
        Box::new(HeuristicRegret),
    ]
}

/// Resolves an objective by registry name. `None` for unknown names.
pub fn objective_by_name(name: &str) -> Option<Box<dyn Objective>> {
    objective_registry().into_iter().find(|o| o.name() == name)
}

/// Configuration of one annealing chain.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Proposal steps in the chain.
    pub steps: usize,
    /// Random schedules per objective evaluation.
    pub schedules: usize,
    /// Initial Metropolis temperature (in score units).
    pub init_temp: f64,
    /// Geometric cooling factor per step (e.g. `0.95`).
    pub cooling: f64,
    /// Chain seed: drives move selection, move randomness, and (derived)
    /// the common-random-numbers study seed.
    pub seed: u64,
    /// Restrict moves to perturbations whose proposals keep
    /// [`SearchPoint::replays_from_trace`] intact — the gallery search's
    /// setting.
    pub replayable_only: bool,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            steps: 48,
            schedules: 160,
            init_temp: 0.05,
            cooling: 0.93,
            seed: 1,
            replayable_only: false,
        }
    }
}

/// Chain counters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealStats {
    /// Objective evaluations performed (1 for the start + one per
    /// non-`None` proposal).
    pub evals: usize,
    /// Accepted proposals.
    pub accepted: usize,
    /// Step index at which the best point was found (0 = the start).
    pub best_step: usize,
}

/// One annealing chain's outcome.
#[derive(Debug)]
pub struct AnnealResult {
    /// The start point's report — the un-searched control the study
    /// compares the best against.
    pub start_report: ObjectiveReport,
    /// The best point found.
    pub best: SearchPoint,
    /// Its report.
    pub best_report: ObjectiveReport,
    /// Chain counters.
    pub stats: AnnealStats,
}

/// Runs one Metropolis chain from `start`, maximizing `objective`.
/// Deterministic in `(start, objective, cfg)`: the same inputs reproduce
/// the same chain bit for bit. Restarts are independent chains with
/// derived seeds (see the module docs).
pub fn anneal(
    start: &SearchPoint,
    objective: &dyn Objective,
    cfg: &AnnealConfig,
) -> Result<AnnealResult, StudyError> {
    let ops: Vec<Box<dyn Perturbation>> = if cfg.replayable_only {
        replayable_perturbations()
    } else {
        perturbation_registry()
    };
    // Common random numbers: every evaluation in the chain shares one
    // study seed, so score differences are scenario differences.
    let study_seed = derive_seed(cfg.seed, 1);
    let start_report = objective.evaluate(&start.to_scenario(), cfg.schedules, study_seed)?;
    let mut evals = 1usize;
    let mut accepted = 0usize;
    let mut best_step = 0usize;

    let mut current = start.clone();
    let mut current_score = start_report.score;
    let mut best = start.clone();
    let mut best_report = start_report.clone();

    let mut sm = SplitMix64::new(derive_seed(cfg.seed, 2));
    let mut temp = cfg.init_temp;
    for step in 1..=cfg.steps {
        let op = &ops[(sm.next_u64() % ops.len() as u64) as usize];
        let move_seed = derive_seed(cfg.seed, 100 + step as u64);
        let accept_draw = (sm.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let Some(proposal) = op.apply(&current, move_seed) else {
            temp *= cfg.cooling;
            continue;
        };
        let report = objective.evaluate(&proposal.to_scenario(), cfg.schedules, study_seed)?;
        evals += 1;
        let delta = report.score - current_score;
        // NaN-free by construction (scores are finite or -inf); a -inf
        // proposal gives delta = -inf → exp = 0 → never accepted.
        if delta >= 0.0 || accept_draw < (delta / temp).exp() {
            current = proposal;
            current_score = report.score;
            accepted += 1;
            if current_score > best_report.score {
                best = current.clone();
                best_report = report;
                best_step = step;
            }
        }
        temp *= cfg.cooling;
    }

    Ok(AnnealResult {
        start_report,
        best,
        best_report,
        stats: AnnealStats {
            evals,
            accepted,
            best_step,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::paper_random(12, 4, 1.1, 7)
    }

    #[test]
    fn objective_registry_names_unique_and_resolvable() {
        let reg = objective_registry();
        let mut names: Vec<&str> = reg.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
        for o in &reg {
            assert!(objective_by_name(o.name()).is_some());
        }
        assert!(objective_by_name("nope").is_none());
    }

    #[test]
    fn cluster_deficit_is_small_on_a_random_scenario() {
        let s = scenario();
        let r = ClusterDeficit.evaluate(&s, 64, 3).unwrap();
        assert!(r.score.is_finite());
        assert!(
            r.score < 1.0 - CLUSTER_THRESHOLD,
            "random scenario broke the cluster: {r:?}"
        );
        assert!(!r.cluster_broken());
    }

    #[test]
    fn objectives_are_deterministic() {
        let s = scenario();
        for o in objective_registry() {
            let a = o.evaluate(&s, 48, 9).unwrap();
            let b = o.evaluate(&s, 48, 9).unwrap();
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{}", o.name());
            assert_eq!(a.detail, b.detail);
        }
    }

    #[test]
    fn heuristic_regret_reports_both_makespans() {
        let s = scenario();
        let r = HeuristicRegret.evaluate(&s, 8, 5).unwrap();
        assert!(r.score.is_finite() && r.score >= 0.0);
        assert!(r.detail.contains("heft=") && r.detail.contains("bil="));
    }
}
