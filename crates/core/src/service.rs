//! `EvalService` — a long-running, batched, cache-deduplicated evaluation
//! front end (the request-oriented counterpart of [`crate::StudyBuilder`]).
//!
//! A study amortizes preparation (scenario discretization, sampling
//! tables, warmed scratch) across tens of thousands of schedules of **one**
//! scenario. A serving workload inverts the shape: many independent
//! clients submit single `(scenario, schedule, evaluator)` requests, and
//! scenarios repeat across requests rather than within one call. Rebuilding
//! the prepared state per request — as `Evaluator::evaluate` does — throws
//! away exactly the work PR 4–5 made shareable.
//!
//! [`EvalService`] makes the prepared state request-scoped instead of
//! study-scoped:
//!
//! * **Scenario cache** — a bounded LRU keyed by
//!   [`robusched_stochastic::scenario_fingerprint`] (structure +
//!   uncertainty model + costs). Each entry holds the per-evaluator
//!   [`PreparedScenario`] plans
//!   ([`robusched_stochastic::DiscretizedScenario`] slots,
//!   [`robusched_stochastic::SamplingTables`]), so repeated scenarios skip
//!   all preparation.
//! * **Result cache + in-flight coalescing** — a bounded LRU of finished
//!   [`MetricValues`] keyed by the full request fingerprint (scenario +
//!   schedule + evaluator + metric options). A repeat of a finished
//!   request is served from the cache without touching a worker; a repeat
//!   of an *in-flight* request attaches to the leader and receives the
//!   same result when it lands — identical requests are evaluated exactly
//!   once no matter how many clients race.
//! * **Batching queue** — workers pull the oldest pending request and
//!   coalesce up to [`ServiceConfig::max_batch`] compatible requests (same
//!   scenario fingerprint, same evaluator) from anywhere in the queue into
//!   one batch sharing a single warmed [`EvalContext`] — the SoA
//!   Monte-Carlo kernel and the prepared classic/Dodin paths then run
//!   back-to-back with zero per-request setup.
//! * **Submission-order streaming** — [`EvalService::next_response`]
//!   releases results strictly in ticket order (the reorder-buffer
//!   discipline of `StudyBuilder`'s delivery lock), regardless of which
//!   worker finished first. Multi-client callers use
//!   [`EvalService::evaluate`]/[`EvalService::wait`] instead and block on
//!   their own tickets.
//!
//! Every bundled evaluator is deterministic, and prepared state never
//! changes numerics (pinned by `tests/eval_cache.rs`), so a response is
//! **bit-identical** whether it came from a cold evaluation, a prepared
//! cache hit, a coalesced in-flight follower, or the result cache — and
//! for any worker count. `tests/eval_service.rs` locks this.
//!
//! A worker panic (e.g. a heuristic fed an impossible state) is caught per
//! request and returned as [`ServiceError::Panicked`] — the service keeps
//! serving, which is the whole point of a long-running front end.

use crate::metrics::{compute_metrics, MetricOptions, MetricValues};
use crate::study::panic_message;
use robusched_platform::Scenario;
use robusched_sched::Schedule;
use robusched_stochastic::{
    evaluator_by_name, scenario_fingerprint, EvalContext, Evaluator, PreparedScenario,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of an [`EvalService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (`None` = available parallelism).
    pub workers: Option<usize>,
    /// Maximum number of *scenarios* whose prepared state is retained
    /// (LRU). Each entry holds one [`PreparedScenario`] per evaluator that
    /// touched it.
    pub scenario_capacity: usize,
    /// Maximum number of finished request results retained (LRU).
    /// `0` disables result caching (in-flight coalescing stays on).
    pub result_capacity: usize,
    /// Maximum requests one worker coalesces into a single batch.
    pub max_batch: usize,
    /// Time-to-live for cached scenario entries: an entry not touched
    /// within this window is purged at the next cache probe (counted in
    /// [`ServiceStats::ttl_evictions`]). Prepared state for a scenario a
    /// client stopped sending can hold graphs, cost matrices and quantile
    /// tables alive indefinitely under a pure LRU bound; a TTL returns that
    /// memory on long-running servers. `None` disables the TTL (the LRU
    /// capacity bound still applies).
    pub scenario_ttl: Option<Duration>,
    /// Bound on the pending-request queue. A submission that would push
    /// the queue past this is *shed* immediately with
    /// [`ServiceError::Overloaded`] instead of growing the backlog
    /// unboundedly — cache hits and in-flight coalesced duplicates are
    /// never shed (they consume no queue slot). `None` disables load
    /// shedding.
    pub queue_capacity: Option<usize>,
    /// Per-request deadline, measured from submission. A request still
    /// unstarted when its deadline lapses is answered
    /// [`ServiceError::TimedOut`] instead of evaluated — under overload
    /// the service spends its workers on requests whose clients are
    /// plausibly still waiting. `None` disables timeouts.
    pub request_timeout: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: None,
            scenario_capacity: 64,
            result_capacity: 4096,
            max_batch: 64,
            scenario_ttl: None,
            queue_capacity: None,
            request_timeout: None,
        }
    }
}

/// One evaluation request: a scenario (shared, typically interned by the
/// front end), a schedule, an evaluator registry name, and the metric
/// parameters. The service always computes the full [`MetricValues`]
/// vector — metric-*set* filtering is a wire-protocol concern (see the
/// `serve` subcommand), not an evaluation one.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// The problem instance. `Arc` so repeated submissions of one scenario
    /// don't clone graphs and cost matrices.
    pub scenario: Arc<Scenario>,
    /// The schedule to evaluate.
    pub schedule: Schedule,
    /// Evaluator registry name (see
    /// [`robusched_stochastic::evaluator_by_name`]).
    pub evaluator: String,
    /// Probabilistic-metric parameters.
    pub metric_opts: MetricOptions,
}

impl EvalRequest {
    /// A request with the default metric options.
    pub fn new(scenario: Arc<Scenario>, schedule: Schedule, evaluator: &str) -> Self {
        Self {
            scenario,
            schedule,
            evaluator: evaluator.to_string(),
            metric_opts: MetricOptions::default(),
        }
    }
}

/// A finished evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// The full metric vector of the schedule.
    pub metrics: MetricValues,
    /// `true` when the scenario's prepared state was already cached (all
    /// preparation skipped).
    pub scenario_hit: bool,
    /// `true` when the *result* was served without an evaluation: a result
    /// cache hit or an in-flight coalesced duplicate.
    pub result_hit: bool,
}

/// Why a request failed. The service itself never dies with a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The evaluator name did not resolve in the registry.
    UnknownEvaluator(String),
    /// The evaluation panicked; the payload is preserved so the root cause
    /// is not masked (cf. [`crate::StudyError::WorkerPanic`]).
    Panicked(String),
    /// The service is shutting down and will not accept the request.
    ShuttingDown,
    /// The pending queue is at [`ServiceConfig::queue_capacity`]; the
    /// request was shed instead of queued (graceful degradation — retry
    /// later or back off).
    Overloaded,
    /// The request waited past [`ServiceConfig::request_timeout`] without
    /// starting and was abandoned.
    TimedOut,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownEvaluator(n) => write!(f, "unknown evaluator '{n}'"),
            Self::Panicked(msg) => write!(f, "evaluation panicked: {msg}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Overloaded => write!(f, "service overloaded: request shed"),
            Self::TimedOut => write!(f, "request timed out before evaluation"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A submitted request's handle: its position in the submission order.
pub type Ticket = u64;

/// The response type every consumption surface yields.
pub type EvalResult = Result<EvalOutcome, ServiceError>;

/// Monotonic service counters (a snapshot; see [`EvalService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by [`EvalService::submit`].
    pub submitted: u64,
    /// Responses produced (including errors).
    pub completed: u64,
    /// Evaluations that found their scenario's prepared state cached.
    pub scenario_hits: u64,
    /// Evaluations that had to prepare (and cache) their scenario.
    pub scenario_misses: u64,
    /// Scenario entries evicted by the LRU bound.
    pub evictions: u64,
    /// Scenario entries purged by [`ServiceConfig::scenario_ttl`].
    pub ttl_evictions: u64,
    /// Finished results evicted by the result-cache LRU bound.
    pub result_evictions: u64,
    /// Requests answered without evaluating: result-cache hits plus
    /// in-flight coalesced duplicates.
    pub result_hits: u64,
    /// Worker batches executed.
    pub batches: u64,
    /// Requests that rode a batch of size ≥ 2.
    pub batched_requests: u64,
    /// Requests shed with [`ServiceError::Overloaded`] (including
    /// coalesced duplicates released when their leader was shed).
    pub shed: u64,
    /// Lead requests abandoned with [`ServiceError::TimedOut`] (coalesced
    /// duplicates fail with the same error but are not double-counted).
    pub timeouts: u64,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Requests are batch-compatible when they share the scenario (by
/// fingerprint) and the evaluator (by lower-cased registry name).
type BatchKey = (u64, String);

struct Job {
    ticket: Ticket,
    request: EvalRequest,
    key: BatchKey,
    result_key: u64,
    /// When the request entered the queue (the timeout clock).
    submitted_at: Instant,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct ResponseState {
    done: BTreeMap<Ticket, EvalResult>,
    /// Next ticket [`EvalService::next_response`] will release.
    next_emit: Ticket,
    /// Tickets already consumed by [`EvalService::wait`]; the in-order
    /// stream steps over these so the two consumption surfaces compose.
    claimed: std::collections::HashSet<Ticket>,
}

/// Prepared state of one cached scenario: per-evaluator plans, filled on
/// first use by each backend.
struct ScenarioEntry {
    prepared: HashMap<String, PreparedScenario>,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
    /// Last-touch wall time for TTL eviction.
    touched: Instant,
}

#[derive(Default)]
struct CacheState {
    scenarios: HashMap<u64, ScenarioEntry>,
    results: HashMap<u64, (MetricValues, u64)>,
    /// result_key → tickets of coalesced duplicate requests waiting on the
    /// in-flight leader.
    in_flight: HashMap<u64, Vec<Ticket>>,
    clock: u64,
}

impl CacheState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    scenario_hits: AtomicU64,
    scenario_misses: AtomicU64,
    evictions: AtomicU64,
    ttl_evictions: AtomicU64,
    result_evictions: AtomicU64,
    result_hits: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

struct Shared {
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    responses: Mutex<ResponseState>,
    responses_cv: Condvar,
    caches: Mutex<CacheState>,
    stats: Stats,
}

impl Shared {
    fn complete(&self, ticket: Ticket, result: EvalResult) {
        let mut rs = self
            .responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        rs.done.insert(ticket, result);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.responses_cv.notify_all();
    }

    /// Tears down an in-flight leader reservation that will never run
    /// (shed or shutdown), failing any duplicates that attached while the
    /// reservation was live. Returns how many waiters were released.
    fn release_in_flight(&self, result_key: u64, err: &ServiceError) -> u64 {
        let waiters = self
            .caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .in_flight
            .remove(&result_key)
            .unwrap_or_default();
        let n = waiters.len() as u64;
        for ticket in waiters {
            self.complete(ticket, Err(err.clone()));
        }
        n
    }
}

/// FNV-1a over the full request identity: scenario fingerprint, schedule
/// (assignment + per-machine order), evaluator name, metric options. Equal
/// keys ⇒ bit-identical responses (64-bit collisions are ignored, as in
/// every fingerprint cache of this workspace).
fn request_fingerprint(scenario_fp: u64, req: &EvalRequest) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |bits: u64| {
        for shift in (0..64).step_by(8) {
            h ^= (bits >> shift) & 0xff;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(scenario_fp);
    for &p in req.schedule.assignment() {
        mix(p as u64);
    }
    for p in 0..req.schedule.machine_count() {
        mix(!0); // machine separator
        for &t in req.schedule.order_on(p) {
            mix(t as u64);
        }
    }
    for b in req.evaluator.to_lowercase().bytes() {
        mix(b as u64);
    }
    mix(req.metric_opts.delta.to_bits());
    mix(req.metric_opts.gamma.to_bits());
    h
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A long-running evaluation server: worker pool + scenario/result caches
/// + batching queue. See the [module docs](self) for the full contract.
///
/// ```
/// use robusched_core::{EvalRequest, EvalService, ServiceConfig};
/// use robusched_platform::Scenario;
/// use robusched_sched::heft;
/// use std::sync::Arc;
///
/// let service = EvalService::new(ServiceConfig::default());
/// let scenario = Arc::new(Scenario::paper_random(10, 3, 1.1, 5));
/// let schedule = heft(&scenario);
/// let req = EvalRequest::new(scenario, schedule, "classic");
/// let cold = service.evaluate(req.clone()).unwrap();
/// let warm = service.evaluate(req).unwrap();
/// assert_eq!(cold.metrics, warm.metrics); // bit-identical across cache tiers
/// assert!(warm.result_hit);
/// ```
pub struct EvalService {
    shared: Arc<Shared>,
    next_ticket: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl EvalService {
    /// Starts the worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = config
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
            responses: Mutex::new(ResponseState::default()),
            responses_cv: Condvar::new(),
            caches: Mutex::new(CacheState::default()),
            stats: Stats::default(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            next_ticket: AtomicU64::new(0),
            workers: handles,
        }
    }

    /// Submits a request; returns its ticket (= submission index). Never
    /// blocks on evaluation: result-cache hits and coalesced duplicates
    /// complete immediately, everything else is queued for the workers.
    pub fn submit(&self, request: EvalRequest) -> Ticket {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);

        // Resolve the evaluator up front so unknown names fail fast (and
        // cheaply) instead of poisoning a batch.
        if evaluator_by_name(&request.evaluator).is_none() {
            self.shared.complete(
                ticket,
                Err(ServiceError::UnknownEvaluator(request.evaluator.clone())),
            );
            return ticket;
        }

        let scenario_fp = scenario_fingerprint(&request.scenario);
        let result_key = request_fingerprint(scenario_fp, &request);

        {
            let mut caches = self
                .shared
                .caches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Tier 1: finished-result cache.
            if let Some(&(metrics, _)) = caches.results.get(&result_key) {
                let stamp = caches.tick();
                caches.results.get_mut(&result_key).unwrap().1 = stamp;
                drop(caches);
                self.shared
                    .stats
                    .result_hits
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.complete(
                    ticket,
                    Ok(EvalOutcome {
                        metrics,
                        scenario_hit: true,
                        result_hit: true,
                    }),
                );
                return ticket;
            }
            // Tier 2: identical request already in flight — attach to it.
            if let Some(waiters) = caches.in_flight.get_mut(&result_key) {
                waiters.push(ticket);
                self.shared
                    .stats
                    .result_hits
                    .fetch_add(1, Ordering::Relaxed);
                return ticket;
            }
            // Leader: reserve the in-flight slot before releasing the lock
            // so racing duplicates find it.
            caches.in_flight.insert(result_key, Vec::new());
        }

        let key = (scenario_fp, request.evaluator.to_lowercase());
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.shutdown {
            drop(queue);
            self.shared
                .release_in_flight(result_key, &ServiceError::ShuttingDown);
            self.shared
                .complete(ticket, Err(ServiceError::ShuttingDown));
            return ticket;
        }
        // Graceful degradation: a full queue sheds the request (and any
        // duplicates that raced onto its reservation) instead of growing
        // the backlog without bound.
        if let Some(cap) = self.shared.config.queue_capacity {
            if queue.pending.len() >= cap {
                drop(queue);
                let followers = self
                    .shared
                    .release_in_flight(result_key, &ServiceError::Overloaded);
                self.shared
                    .stats
                    .shed
                    .fetch_add(1 + followers, Ordering::Relaxed);
                self.shared.complete(ticket, Err(ServiceError::Overloaded));
                return ticket;
            }
        }
        queue.pending.push_back(Job {
            ticket,
            request,
            key,
            result_key,
            submitted_at: Instant::now(),
        });
        drop(queue);
        self.shared.queue_cv.notify_one();
        ticket
    }

    /// Blocks until `ticket`'s response is ready and removes it. Each
    /// ticket yields its response exactly once. `wait` composes with
    /// [`next_response`](Self::next_response): the in-order stream steps
    /// over tickets consumed here instead of stalling on them.
    pub fn wait(&self, ticket: Ticket) -> EvalResult {
        let mut rs = self
            .shared
            .responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = rs.done.remove(&ticket) {
                rs.claimed.insert(ticket);
                // Wake any `next_response` caller parked on this ticket so
                // it can advance past the claim.
                self.shared.responses_cv.notify_all();
                return result;
            }
            rs = self
                .shared
                .responses_cv
                .wait(rs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Submits and blocks for the result — the multi-client convenience
    /// surface (each client thread calls `evaluate` independently).
    pub fn evaluate(&self, request: EvalRequest) -> EvalResult {
        let ticket = self.submit(request);
        self.wait(ticket)
    }

    /// Blocks until the *next* unclaimed response in submission order is
    /// ready and returns `(ticket, response)` — the single-consumer
    /// streaming surface (the reorder-buffer discipline: responses never
    /// overtake each other even when workers finish out of order).
    /// Tickets already consumed by [`wait`](Self::wait) are skipped.
    pub fn next_response(&self) -> (Ticket, EvalResult) {
        let mut rs = self
            .shared
            .responses
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            loop {
                let cursor = rs.next_emit;
                if !rs.claimed.remove(&cursor) {
                    break;
                }
                rs.next_emit += 1;
            }
            let next = rs.next_emit;
            if let Some(result) = rs.done.remove(&next) {
                rs.next_emit += 1;
                return (next, result);
            }
            rs = self
                .shared
                .responses_cv
                .wait(rs)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared.stats;
        ServiceStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            scenario_hits: s.scenario_hits.load(Ordering::Relaxed),
            scenario_misses: s.scenario_misses.load(Ordering::Relaxed),
            evictions: s.evictions.load(Ordering::Relaxed),
            ttl_evictions: s.ttl_evictions.load(Ordering::Relaxed),
            result_evictions: s.result_evictions.load(Ordering::Relaxed),
            result_hits: s.result_hits.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_requests: s.batched_requests.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Number of scenarios currently cached (≤
    /// [`ServiceConfig::scenario_capacity`]).
    pub fn cached_scenarios(&self) -> usize {
        self.shared
            .caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .scenarios
            .len()
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.shutdown = true;
        }
        self.shared.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the per-request guard is
            // already accounted for; don't double-panic the drop.
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        // Pull the oldest job, then coalesce batch-compatible jobs from
        // anywhere in the queue (bounded by `max_batch`).
        let batch: Vec<Job> = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(leader) = queue.pending.pop_front() {
                    let mut batch = vec![leader];
                    let key = batch[0].key.clone();
                    let max = shared.config.max_batch.max(1);
                    let mut i = 0;
                    while i < queue.pending.len() && batch.len() < max {
                        if queue.pending[i].key == key {
                            batch.push(queue.pending.remove(i).unwrap());
                        } else {
                            i += 1;
                        }
                    }
                    break batch;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_batch(shared, batch);
    }
}

/// Fetches (or prepares and caches) the batch scenario's prepared state,
/// returning it plus whether it was a hit. Preparation runs outside the
/// cache lock; if another worker prepared the same (scenario, evaluator)
/// concurrently, the first insertion wins so every later request shares
/// one plan.
/// Purges scenario entries staler than [`ServiceConfig::scenario_ttl`].
/// Runs under the cache lock at every probe, so an idle scenario's memory
/// is reclaimed the next time *any* request touches the cache.
fn purge_stale_scenarios(shared: &Shared, caches: &mut CacheState) {
    let Some(ttl) = shared.config.scenario_ttl else {
        return;
    };
    let now = Instant::now();
    let before = caches.scenarios.len();
    caches
        .scenarios
        .retain(|_, entry| now.duration_since(entry.touched) < ttl);
    let purged = (before - caches.scenarios.len()) as u64;
    if purged > 0 {
        shared
            .stats
            .ttl_evictions
            .fetch_add(purged, Ordering::Relaxed);
    }
}

fn prepared_for(
    shared: &Shared,
    fp: u64,
    evaluator_key: &str,
    evaluator: &dyn Evaluator,
    scenario: &Scenario,
) -> (PreparedScenario, bool) {
    {
        let mut caches = shared
            .caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        purge_stale_scenarios(shared, &mut caches);
        let stamp = caches.tick();
        if let Some(entry) = caches.scenarios.get_mut(&fp) {
            entry.stamp = stamp;
            entry.touched = Instant::now();
            if let Some(prep) = entry.prepared.get(evaluator_key) {
                shared.stats.scenario_hits.fetch_add(1, Ordering::Relaxed);
                return (prep.clone(), true);
            }
        }
    }
    shared.stats.scenario_misses.fetch_add(1, Ordering::Relaxed);
    let prep = evaluator.prepare(scenario);
    let mut caches = shared
        .caches
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let stamp = caches.tick();
    let entry = caches.scenarios.entry(fp).or_insert_with(|| ScenarioEntry {
        prepared: HashMap::new(),
        stamp,
        touched: Instant::now(),
    });
    entry.stamp = stamp;
    entry.touched = Instant::now();
    let prep = entry
        .prepared
        .entry(evaluator_key.to_string())
        .or_insert(prep)
        .clone();
    // Enforce the LRU bound (never evicting the entry just touched).
    let capacity = shared.config.scenario_capacity.max(1);
    while caches.scenarios.len() > capacity {
        let victim = caches
            .scenarios
            .iter()
            .filter(|(k, _)| **k != fp)
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| *k);
        match victim {
            Some(k) => {
                caches.scenarios.remove(&k);
                shared.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
            None => break,
        }
    }
    (prep, false)
}

fn run_batch(shared: &Shared, batch: Vec<Job>) {
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    if batch.len() >= 2 {
        shared
            .stats
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    let (fp, evaluator_key) = batch[0].key.clone();
    // Registry resolution was validated at submit; a stale registry would
    // be a programming error, so fall back to a per-job error rather than
    // panicking the worker.
    let Some(evaluator) = evaluator_by_name(&evaluator_key) else {
        for job in batch {
            finish_job(
                shared,
                &job,
                Err(ServiceError::UnknownEvaluator(evaluator_key.clone())),
            );
        }
        return;
    };
    let (prep, scenario_hit) = prepared_for(
        shared,
        fp,
        &evaluator_key,
        evaluator.as_ref(),
        &batch[0].request.scenario,
    );
    // One context for the whole batch: scratch warmed by the first request
    // is reused by every one after (the same discipline as a study
    // worker's per-thread context).
    let mut cx = EvalContext::new(prep.clone());
    for job in batch {
        // A request that waited past its deadline is abandoned rather than
        // evaluated: under overload the workers serve requests whose
        // clients are plausibly still listening.
        if let Some(timeout) = shared.config.request_timeout {
            if job.submitted_at.elapsed() >= timeout {
                shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                finish_job(shared, &job, Err(ServiceError::TimedOut));
                continue;
            }
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let rv = evaluator.evaluate_with(&job.request.scenario, &job.request.schedule, &mut cx);
            compute_metrics(
                &job.request.scenario,
                &job.request.schedule,
                &rv,
                &job.request.metric_opts,
            )
        }));
        match result {
            Ok(metrics) => finish_job(
                shared,
                &job,
                Ok(EvalOutcome {
                    metrics,
                    scenario_hit,
                    result_hit: false,
                }),
            ),
            Err(payload) => {
                // The scratch may be mid-mutation — rebuild the context so
                // the rest of the batch starts clean.
                cx = EvalContext::new(prep.clone());
                finish_job(
                    shared,
                    &job,
                    Err(ServiceError::Panicked(panic_message(payload.as_ref()))),
                );
            }
        }
    }
}

/// Publishes a finished job: stores the result in the result cache,
/// releases the in-flight waiters with the same outcome (marked as result
/// hits), and completes the leader's ticket.
fn finish_job(shared: &Shared, job: &Job, result: EvalResult) {
    let waiters = {
        let mut caches = shared
            .caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Ok(outcome) = &result {
            let capacity = shared.config.result_capacity;
            if capacity > 0 {
                let stamp = caches.tick();
                caches
                    .results
                    .insert(job.result_key, (outcome.metrics, stamp));
                while caches.results.len() > capacity {
                    let victim = caches
                        .results
                        .iter()
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| *k);
                    match victim {
                        Some(k) => {
                            caches.results.remove(&k);
                            shared
                                .stats
                                .result_evictions
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                }
            }
        }
        caches.in_flight.remove(&job.result_key).unwrap_or_default()
    };
    for ticket in waiters {
        let follower = match &result {
            Ok(outcome) => Ok(EvalOutcome {
                result_hit: true,
                ..*outcome
            }),
            Err(e) => Err(e.clone()),
        };
        shared.complete(ticket, follower);
    }
    shared.complete(job.ticket, result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusched_sched::{heft, random_schedule};

    fn scenario(seed: u64) -> Arc<Scenario> {
        Arc::new(Scenario::paper_random(10, 3, 1.1, seed))
    }

    #[test]
    fn warm_requests_hit_the_result_cache() {
        let service = EvalService::new(ServiceConfig {
            workers: Some(2),
            ..Default::default()
        });
        let s = scenario(5);
        let req = EvalRequest::new(s.clone(), heft(&s), "classic");
        let cold = service.evaluate(req.clone()).unwrap();
        assert!(!cold.result_hit);
        let warm = service.evaluate(req).unwrap();
        assert!(warm.result_hit && warm.scenario_hit);
        assert_eq!(cold.metrics, warm.metrics);
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.result_hits, 1);
    }

    #[test]
    fn unknown_evaluator_is_an_error_response() {
        let service = EvalService::new(ServiceConfig::default());
        let s = scenario(1);
        let req = EvalRequest::new(s.clone(), heft(&s), "exact");
        assert_eq!(
            service.evaluate(req).unwrap_err(),
            ServiceError::UnknownEvaluator("exact".into())
        );
    }

    #[test]
    fn responses_stream_in_submission_order() {
        let service = EvalService::new(ServiceConfig {
            workers: Some(4),
            ..Default::default()
        });
        let s = scenario(7);
        for i in 0..20u64 {
            let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
            service.submit(EvalRequest::new(s.clone(), sched, "classic"));
        }
        for expect in 0..20u64 {
            let (ticket, result) = service.next_response();
            assert_eq!(ticket, expect);
            assert!(result.is_ok());
        }
    }

    #[test]
    fn waited_tickets_do_not_stall_the_ordered_stream() {
        // Mixing surfaces: tickets 0..5 consumed via wait(), the rest via
        // next_response() — the stream must skip the claimed prefix
        // instead of blocking on it.
        let service = EvalService::new(ServiceConfig {
            workers: Some(2),
            ..Default::default()
        });
        let s = scenario(11);
        let tickets: Vec<Ticket> = (0..10u64)
            .map(|i| {
                let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
                service.submit(EvalRequest::new(s.clone(), sched, "classic"))
            })
            .collect();
        for &t in &tickets[..5] {
            service.wait(t).unwrap();
        }
        for expect in 5..10u64 {
            let (ticket, result) = service.next_response();
            assert_eq!(ticket, expect);
            assert!(result.is_ok());
        }
    }

    #[test]
    fn zero_ttl_forces_repreparation() {
        // TTL 0 means every probe finds the entry stale: the second
        // request must purge, re-prepare, and count a TTL eviction.
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            scenario_ttl: Some(Duration::ZERO),
            result_capacity: 0, // keep the result cache out of the way
            ..Default::default()
        });
        let s = scenario(21);
        for i in 0..3u64 {
            let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
            service
                .evaluate(EvalRequest::new(s.clone(), sched, "classic"))
                .unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.scenario_hits, 0, "nothing survives a zero TTL");
        assert_eq!(stats.scenario_misses, 3);
        assert!(stats.ttl_evictions >= 2, "got {}", stats.ttl_evictions);
        assert_eq!(service.cached_scenarios(), 1, "last entry still resident");
    }

    #[test]
    fn generous_ttl_keeps_entries_warm() {
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            scenario_ttl: Some(Duration::from_secs(3600)),
            result_capacity: 0,
            ..Default::default()
        });
        let s = scenario(22);
        for i in 0..3u64 {
            let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
            service
                .evaluate(EvalRequest::new(s.clone(), sched, "classic"))
                .unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.scenario_misses, 1);
        assert_eq!(stats.scenario_hits, 2);
        assert_eq!(stats.ttl_evictions, 0);
    }

    #[test]
    fn result_cache_evictions_are_counted() {
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            result_capacity: 1,
            ..Default::default()
        });
        let s = scenario(23);
        for i in 0..3u64 {
            let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
            service
                .evaluate(EvalRequest::new(s.clone(), sched, "classic"))
                .unwrap();
        }
        // Capacity 1: the 2nd and 3rd insertions each evict the previous.
        assert_eq!(service.stats().result_evictions, 2);
    }

    #[test]
    fn in_flight_duplicates_coalesce() {
        // One worker, identical requests racing: the leader evaluates,
        // the rest attach. With max_batch = 1 the duplicates cannot ride
        // the leader's batch, so coalescing is what keeps evaluations at 1.
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            max_batch: 1,
            ..Default::default()
        });
        let s = scenario(9);
        let req = EvalRequest::new(s.clone(), heft(&s), "spelde");
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(req.clone())).collect();
        let results: Vec<EvalOutcome> = tickets
            .into_iter()
            .map(|t| service.wait(t).unwrap())
            .collect();
        for pair in results.windows(2) {
            assert_eq!(pair[0].metrics, pair[1].metrics);
        }
        // At least the submissions that raced the (slow) leader coalesced;
        // by the time of the last waits the result cache serves the rest.
        assert!(service.stats().result_hits >= 1);
    }

    #[test]
    fn zero_capacity_sheds_every_request() {
        // Capacity 0: the queue can never admit, so every submission is
        // shed with `Overloaded` — deterministically, at any worker count.
        for workers in [1, 2, 4] {
            let service = EvalService::new(ServiceConfig {
                workers: Some(workers),
                queue_capacity: Some(0),
                ..Default::default()
            });
            let s = scenario(31);
            for i in 0..6u64 {
                let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
                let err = service
                    .evaluate(EvalRequest::new(s.clone(), sched, "classic"))
                    .unwrap_err();
                assert_eq!(err, ServiceError::Overloaded, "workers={workers}");
            }
            // Shedding must tear down the leader's in-flight reservation:
            // resubmitting the same request sheds again instead of
            // attaching to a dead reservation and hanging forever.
            let req = EvalRequest::new(s.clone(), heft(&s), "classic");
            assert_eq!(
                service.evaluate(req.clone()).unwrap_err(),
                ServiceError::Overloaded
            );
            assert_eq!(service.evaluate(req).unwrap_err(), ServiceError::Overloaded);
            let stats = service.stats();
            assert_eq!(stats.shed, 8, "workers={workers}");
            assert_eq!(stats.completed, 8, "every shed request still answers");
        }
    }

    #[test]
    fn zero_timeout_abandons_queued_requests() {
        // A zero deadline has always lapsed by the time a worker looks:
        // every queued request times out instead of evaluating.
        for workers in [1, 2, 4] {
            let service = EvalService::new(ServiceConfig {
                workers: Some(workers),
                request_timeout: Some(Duration::ZERO),
                ..Default::default()
            });
            let s = scenario(33);
            let tickets: Vec<Ticket> = (0..6u64)
                .map(|i| {
                    let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
                    service.submit(EvalRequest::new(s.clone(), sched, "classic"))
                })
                .collect();
            for t in tickets {
                assert_eq!(
                    service.wait(t).unwrap_err(),
                    ServiceError::TimedOut,
                    "workers={workers}"
                );
            }
            let stats = service.stats();
            assert_eq!(stats.timeouts, 6, "workers={workers}");
            assert_eq!(stats.shed, 0, "timeouts are not sheds");
        }
    }

    #[test]
    fn saturating_burst_sheds_instead_of_growing_queue() {
        // The acceptance pin: one worker grinding slow evaluations, a
        // bounded queue, and a burst of distinct requests. The first
        // request always admits (empty queue); once the backlog hits the
        // cap the rest shed — the queue never grows past capacity, and
        // every ticket still gets an answer.
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            max_batch: 1,
            queue_capacity: Some(2),
            ..Default::default()
        });
        let s = Arc::new(Scenario::paper_random(40, 3, 1.1, 35));
        let tickets: Vec<Ticket> = (0..32u64)
            .map(|i| {
                let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
                service.submit(EvalRequest::new(s.clone(), sched, "spelde"))
            })
            .collect();
        let mut ok = 0u64;
        let mut shed = 0u64;
        for t in tickets {
            match service.wait(t) {
                Ok(_) => ok += 1,
                Err(ServiceError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected error under overload: {e}"),
            }
        }
        assert_eq!(ok + shed, 32, "every request is answered exactly once");
        assert!(ok >= 1, "the first request always admits");
        assert!(shed >= 1, "a saturating burst must shed");
        assert_eq!(service.stats().shed, shed);
    }

    #[test]
    fn unbounded_service_never_sheds_or_times_out() {
        // The default config keeps today's behavior: no shedding, no
        // timeouts, however bursty the submission pattern.
        let service = EvalService::new(ServiceConfig {
            workers: Some(1),
            ..Default::default()
        });
        let s = scenario(37);
        let tickets: Vec<Ticket> = (0..8u64)
            .map(|i| {
                let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
                service.submit(EvalRequest::new(s.clone(), sched, "classic"))
            })
            .collect();
        for t in tickets {
            service.wait(t).unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.timeouts, 0);
    }
}
