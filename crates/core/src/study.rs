//! The experimental protocol of §V–§VI, as a pluggable engine.
//!
//! Per case the paper evaluates 10 000 uniform random schedules (2 000 for
//! the 100-task cases) plus the three heuristics, computes every metric for
//! each schedule from its analytic makespan distribution, and reports the
//! Pearson correlation matrix between the metrics.
//!
//! [`StudyBuilder`] generalizes that protocol across three axes:
//!
//! * **heuristics** are any set of [`robusched_sched::Heuristic`] names
//!   resolved through `sched`'s registry;
//! * **the evaluator** is any [`robusched_stochastic::Evaluator`] (classic,
//!   Spelde, Dodin, Monte-Carlo, or an external impl);
//! * **the output** streams: parallel workers deliver metric rows *in
//!   sampling order* into `O(k²)` [`StreamingMoments`] and a bounded
//!   [`RankReservoir`] (plus an optional caller [`MetricSink`]), so
//!   correlation matrices no longer require materializing every
//!   [`MetricValues`] — 100k+-schedule sweeps run in constant memory.
//!   Buffering remains available ([`StudyBuilder::buffer_metrics`]) for
//!   consumers that need the raw rows.
//!
//! Work is split into fixed 64-schedule chunks, each seeded as
//! `derive_seed(seed, index)`; workers steal chunks but deliver them in
//! index order, so every accumulator state — and therefore every streamed
//! matrix — is bit-identical for any thread count.
//!
//! [`run_case`] survives as a thin deprecated shim over the builder: it
//! buffers every row and computes the two-pass [`pearson_matrix`], which
//! keeps its output bit-for-bit identical to the pre-builder pipeline.

use crate::metrics::{compute_metrics, MetricOptions, MetricValues, METRIC_LABELS};
use crate::streaming::{RankReservoir, StreamingMoments};
use crossbeam::thread;
use robusched_platform::Scenario;
use robusched_randvar::derive_seed;
use robusched_sched::{heuristic_by_name, random_schedule, Heuristic, ScheduleError};
use robusched_stats::CorrMatrix;
use robusched_stochastic::{ClassicEvaluator, EvalContext, Evaluator};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as
/// text: `&str` and `String` payloads verbatim, anything else opaquely.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Study configuration for one case (the legacy [`run_case`] surface;
/// [`StudyBuilder`] is the pluggable superset).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of random schedules (paper: 10 000; 2 000 for n = 100).
    pub random_schedules: usize,
    /// Master seed for schedule sampling.
    pub seed: u64,
    /// Probabilistic-metric parameters.
    pub metric_opts: MetricOptions,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Also evaluate the heuristics (HEFT, BIL, Hyb.BMCT).
    pub with_heuristics: bool,
    /// Additionally evaluate CPOP (extension beyond the paper's set).
    pub with_cpop: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            random_schedules: 10_000,
            seed: 1,
            metric_opts: MetricOptions::default(),
            threads: None,
            with_heuristics: true,
            with_cpop: false,
        }
    }
}

/// The outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Metrics of every random schedule, in sampling order.
    pub random: Vec<MetricValues>,
    /// Metrics of the heuristic schedules, labeled.
    pub heuristics: Vec<(String, MetricValues)>,
    /// Pearson correlation matrix over the random schedules, in the
    /// paper's plotting orientation (see
    /// [`MetricValues::oriented_vector`]).
    pub pearson: CorrMatrix,
}

/// Why a study could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyError {
    /// `random_schedules` was zero.
    NoSchedules,
    /// `threads` was explicitly set to zero.
    ZeroThreads,
    /// `reservoir_capacity` was below the 2-row minimum a rank statistic
    /// needs.
    ReservoirTooSmall(usize),
    /// A heuristic name did not resolve in `sched`'s registry.
    UnknownHeuristic(String),
    /// An evaluator name did not resolve in `stochastic`'s registry.
    UnknownEvaluator(String),
    /// A heuristic rejected the scenario.
    Schedule(ScheduleError),
    /// A worker thread panicked mid-study (e.g. an evaluator hit a
    /// numerically impossible state). Carries the first panic's payload
    /// rendered as text; sibling workers drain without a secondary
    /// `PoisonError` masking it.
    WorkerPanic(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSchedules => write!(f, "need at least one random schedule"),
            Self::ZeroThreads => write!(f, "thread count must be at least 1"),
            Self::ReservoirTooSmall(c) => {
                write!(f, "rank-reservoir capacity must be at least 2, got {c}")
            }
            Self::UnknownHeuristic(n) => write!(f, "unknown heuristic '{n}'"),
            Self::UnknownEvaluator(n) => write!(f, "unknown evaluator '{n}'"),
            Self::Schedule(e) => write!(f, "heuristic produced an invalid schedule: {e}"),
            Self::WorkerPanic(msg) => write!(f, "study worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {}

impl From<ScheduleError> for StudyError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

/// A per-row consumer of the metric stream.
///
/// [`StudyBuilder::sink`] registers one; the engine calls
/// [`record`](MetricSink::record) once per random schedule **in sampling
/// order** (index `0, 1, 2, …`), regardless of how many worker threads
/// computed the rows. Sinks must be `Send` (they are invoked from worker
/// threads, serialized under the delivery lock).
///
/// Any `FnMut(usize, &MetricValues) + Send` closure is a sink.
pub trait MetricSink: Send {
    /// Consumes the metric row of schedule `index`.
    fn record(&mut self, index: usize, values: &MetricValues);
}

impl<F: FnMut(usize, &MetricValues) + Send> MetricSink for F {
    fn record(&mut self, index: usize, values: &MetricValues) {
        self(index, values);
    }
}

/// The streamed outcome of a study.
#[derive(Debug)]
pub struct StudyResult {
    /// Metrics of the requested heuristic schedules, labeled, in request
    /// order.
    pub heuristics: Vec<(String, MetricValues)>,
    /// Streaming co-moment accumulator over the oriented metric vectors of
    /// the random schedules.
    pub moments: StreamingMoments,
    /// Rank reservoir over the same rows (exact while the schedule count
    /// does not exceed its capacity).
    pub reservoir: RankReservoir,
    /// Every random schedule's metrics in sampling order — only when
    /// [`StudyBuilder::buffer_metrics`] was requested.
    pub random: Option<Vec<MetricValues>>,
}

impl StudyResult {
    /// Number of random schedules evaluated.
    pub fn random_count(&self) -> usize {
        self.moments.count()
    }

    /// The streamed Pearson matrix (paper orientation). Agrees with the
    /// buffered two-pass [`pearson_matrix`] to ~1e-13 per cell.
    pub fn pearson_streamed(&self) -> CorrMatrix {
        self.moments.pearson_matrix(&METRIC_LABELS)
    }

    /// The streamed Spearman matrix — exact while the schedule count is
    /// within the reservoir capacity, a uniform-sample estimate beyond.
    pub fn spearman_streamed(&self) -> CorrMatrix {
        self.reservoir.spearman_matrix(&METRIC_LABELS)
    }
}

/// Schedules per work chunk (fixed for thread-count determinism).
const CHUNK: usize = 64;

/// Default [`RankReservoir`] capacity: covers the paper's 10 000-schedule
/// cases' Spearman needs with a 2 000-row margin over its n = 100 tier.
const DEFAULT_RESERVOIR: usize = 4096;

/// Builder for the §V protocol with pluggable heuristics, evaluator and
/// output streaming. See the [module docs](self) for the engine contract.
///
/// ```
/// use robusched_core::StudyBuilder;
/// use robusched_platform::Scenario;
///
/// let scenario = Scenario::paper_random(10, 3, 1.1, 5);
/// let res = StudyBuilder::new(&scenario)
///     .random_schedules(200)
///     .seed(3)
///     .heuristics(&["HEFT", "BIL"])
///     .evaluator_named("classic")
///     .run()
///     .unwrap();
/// assert_eq!(res.random_count(), 200);
/// assert!(res.pearson_streamed().get(1, 5) > 0.9); // σ ~ lateness
/// ```
pub struct StudyBuilder<'a> {
    scenario: &'a Scenario,
    random_schedules: usize,
    seed: u64,
    metric_opts: MetricOptions,
    threads: Option<usize>,
    heuristic_names: Vec<String>,
    evaluator: Box<dyn Evaluator>,
    evaluator_name: Option<String>,
    buffer: bool,
    reservoir_capacity: usize,
    sink: Option<&'a mut dyn MetricSink>,
}

impl<'a> StudyBuilder<'a> {
    /// A builder with the paper's defaults: 10 000 random schedules, seed
    /// 1, classic evaluator, no heuristics, streaming only (no buffering).
    pub fn new(scenario: &'a Scenario) -> Self {
        Self {
            scenario,
            random_schedules: 10_000,
            seed: 1,
            metric_opts: MetricOptions::default(),
            threads: None,
            heuristic_names: Vec::new(),
            evaluator: Box::new(ClassicEvaluator::default()),
            evaluator_name: None,
            buffer: false,
            reservoir_capacity: DEFAULT_RESERVOIR,
            sink: None,
        }
    }

    /// Number of random schedules to sample.
    pub fn random_schedules(mut self, k: usize) -> Self {
        self.random_schedules = k;
        self
    }

    /// Master seed for schedule sampling (and the rank reservoir).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Probabilistic-metric parameters.
    pub fn metric_opts(mut self, opts: MetricOptions) -> Self {
        self.metric_opts = opts;
        self
    }

    /// Worker thread count. [`run`](Self::run) rejects 0; builders that
    /// never call this use all available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Worker thread count as an option (`None` = available parallelism) —
    /// the shape CLI flags arrive in.
    pub fn threads_opt(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Heuristics to evaluate alongside the random schedules, by registry
    /// name (see [`robusched_sched::heuristic_by_name`]); resolution
    /// happens in [`run`](Self::run).
    pub fn heuristics(mut self, names: &[&str]) -> Self {
        self.heuristic_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// The makespan-distribution backend (any [`Evaluator`] instance, for
    /// non-default configurations).
    pub fn evaluator(mut self, evaluator: Box<dyn Evaluator>) -> Self {
        self.evaluator = evaluator;
        self.evaluator_name = None;
        self
    }

    /// The backend by registry name with its default configuration (see
    /// [`robusched_stochastic::evaluator_by_name`]); resolution happens in
    /// [`run`](Self::run).
    pub fn evaluator_named(mut self, name: &str) -> Self {
        self.evaluator_name = Some(name.to_string());
        self
    }

    /// Also buffer every random schedule's [`MetricValues`] in sampling
    /// order (`O(n·k)` memory — the legacy pipeline's behavior).
    pub fn buffer_metrics(mut self, yes: bool) -> Self {
        self.buffer = yes;
        self
    }

    /// Capacity of the Spearman rank reservoir (default 4096; minimum 2,
    /// checked by [`run`](Self::run)). Studies whose Spearman artifacts
    /// must stay *exact* rather than sampled set this to the schedule
    /// count.
    pub fn reservoir_capacity(mut self, capacity: usize) -> Self {
        self.reservoir_capacity = capacity;
        self
    }

    /// Registers a per-row consumer of the metric stream (e.g. a CSV
    /// writer); called in sampling order.
    pub fn sink(mut self, sink: &'a mut dyn MetricSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Runs the study.
    pub fn run(self) -> Result<StudyResult, StudyError> {
        if self.random_schedules == 0 {
            return Err(StudyError::NoSchedules);
        }
        if self.threads == Some(0) {
            return Err(StudyError::ZeroThreads);
        }
        if self.reservoir_capacity < 2 {
            return Err(StudyError::ReservoirTooSmall(self.reservoir_capacity));
        }
        let evaluator: Box<dyn Evaluator> = match &self.evaluator_name {
            None => self.evaluator,
            Some(name) => robusched_stochastic::evaluator_by_name(name)
                .ok_or_else(|| StudyError::UnknownEvaluator(name.clone()))?,
        };
        let heuristics: Vec<Box<dyn Heuristic>> = self
            .heuristic_names
            .iter()
            .map(|n| heuristic_by_name(n).ok_or_else(|| StudyError::UnknownHeuristic(n.clone())))
            .collect::<Result<_, _>>()?;

        let scenario = self.scenario;
        let m = scenario.machine_count();
        // Shared read-only precomputation (e.g. the scenario discretization
        // cache), built once and handed to every worker's context; the
        // contexts themselves carry per-thread scratch reused across all
        // schedules of that worker.
        let prep = evaluator.prepare(scenario);
        let eval_one =
            |cx: &mut EvalContext, schedule: &robusched_sched::Schedule| -> MetricValues {
                let rv = evaluator.evaluate_with(scenario, schedule, cx);
                compute_metrics(scenario, schedule, &rv, &self.metric_opts)
            };

        // ---- Random schedules: parallel chunk computation, in-order
        // delivery into the accumulators. ----
        let k = METRIC_LABELS.len();
        let mut delivery = Delivery {
            next: 0,
            pending: BTreeMap::new(),
            moments: StreamingMoments::new(k),
            reservoir: RankReservoir::new(k, self.reservoir_capacity, derive_seed(self.seed, !0)),
            buffer: self
                .buffer
                .then(|| Vec::with_capacity(self.random_schedules)),
            sink: self.sink,
        };
        let first_panic = Mutex::new(None::<String>);
        {
            let n_chunks = self.random_schedules.div_ceil(CHUNK);
            let next_chunk = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let delivery = Mutex::new(&mut delivery);
            let threads = self
                .threads
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                })
                .max(1);
            thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|_| {
                        // One context per worker: the shared prep is an Arc
                        // clone, the scratch buffers warm up on the first
                        // schedule and are reused for every one after.
                        let mut cx = EvalContext::new(prep.clone());
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * CHUNK;
                            let hi = (lo + CHUNK).min(self.random_schedules);
                            // A panic anywhere in the chunk (evaluator, metric
                            // computation, accumulator delivery) must not
                            // unwind through the scope: the first one is
                            // captured as a `StudyError`, siblings drain via
                            // the abort flag, and the delivery lock stays
                            // usable even if it was poisoned mid-`deliver`.
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                let rows: Vec<MetricValues> = (lo..hi)
                                    .map(|idx| {
                                        let sched = random_schedule(
                                            &scenario.graph.dag,
                                            m,
                                            derive_seed(self.seed, idx as u64),
                                        );
                                        eval_one(&mut cx, &sched)
                                    })
                                    .collect();
                                delivery
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .deliver(c, lo, rows);
                            }));
                            if let Err(payload) = outcome {
                                abort.store(true, Ordering::Relaxed);
                                let mut slot = first_panic
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                if slot.is_none() {
                                    *slot = Some(panic_message(payload.as_ref()));
                                }
                                break;
                            }
                        }
                    });
                }
            })
            .expect("study workers no longer unwind");
        }
        if let Some(msg) = first_panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            return Err(StudyError::WorkerPanic(msg));
        }
        debug_assert!(delivery.pending.is_empty());
        debug_assert_eq!(delivery.moments.count(), self.random_schedules);

        // ---- Heuristics. ----
        let mut cx = EvalContext::new(prep.clone());
        let mut heuristic_rows = Vec::with_capacity(heuristics.len());
        for h in &heuristics {
            let sched = h.schedule(scenario)?;
            heuristic_rows.push((h.name().to_string(), eval_one(&mut cx, &sched)));
        }

        Ok(StudyResult {
            heuristics: heuristic_rows,
            moments: delivery.moments,
            reservoir: delivery.reservoir,
            random: delivery.buffer,
        })
    }
}

/// In-order delivery state: workers hand in finished chunks; chunks are
/// released to the accumulators strictly by index, so accumulator states
/// never depend on worker scheduling. Out-of-order chunks wait in
/// `pending` (bounded by worker-count in practice).
struct Delivery<'s> {
    next: usize,
    pending: BTreeMap<usize, (usize, Vec<MetricValues>)>,
    moments: StreamingMoments,
    reservoir: RankReservoir,
    buffer: Option<Vec<MetricValues>>,
    sink: Option<&'s mut dyn MetricSink>,
}

impl Delivery<'_> {
    fn deliver(&mut self, chunk: usize, first_index: usize, rows: Vec<MetricValues>) {
        self.pending.insert(chunk, (first_index, rows));
        while let Some(entry) = self.pending.remove(&self.next) {
            let (first, rows) = entry;
            for (off, values) in rows.into_iter().enumerate() {
                let oriented = values.oriented_vector();
                self.moments.push(&oriented);
                self.reservoir.push(&oriented);
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(first + off, &values);
                }
                if let Some(buf) = &mut self.buffer {
                    buf.push(values);
                }
            }
            self.next += 1;
        }
    }
}

/// Runs the §V protocol on one scenario with the classic evaluator and the
/// paper's heuristic list, buffering every metric row.
///
/// Thin shim over [`StudyBuilder`], kept so legacy callers and the seed
/// tests stay bit-for-bit identical (it computes the two-pass
/// [`pearson_matrix`] over the buffered rows, exactly like the original
/// monolith).
///
/// # Panics
/// Panics if `random_schedules == 0`.
#[deprecated(note = "use StudyBuilder: pluggable evaluators/heuristics and streaming accumulators")]
pub fn run_case(scenario: &Scenario, cfg: &StudyConfig) -> CaseResult {
    let mut names: Vec<&str> = Vec::new();
    if cfg.with_heuristics {
        names.extend(["HEFT", "BIL", "Hyb.BMCT"]);
        if cfg.with_cpop {
            names.push("CPOP");
        }
    }
    let res = StudyBuilder::new(scenario)
        .random_schedules(cfg.random_schedules)
        .seed(cfg.seed)
        .metric_opts(cfg.metric_opts)
        // The monolith clamped threads to ≥ 1 instead of rejecting 0.
        .threads_opt(cfg.threads.map(|t| t.max(1)))
        .heuristics(&names)
        .buffer_metrics(true)
        .run()
        .expect("need at least one schedule");
    let random = res.random.expect("buffering requested");
    let pearson = pearson_matrix(&random);
    CaseResult {
        random,
        heuristics: res.heuristics,
        pearson,
    }
}

/// The §VI Pearson matrix of a buffered metric sample (paper orientation).
pub fn pearson_matrix(rows: &[MetricValues]) -> CorrMatrix {
    matrix_with(rows, robusched_stats::pearson)
}

/// Spearman (rank) correlation matrix of a buffered metric sample — an
/// extension robust to the "slightly curved set of points" the paper notes
/// Pearson merely tolerates.
pub fn spearman_matrix(rows: &[MetricValues]) -> CorrMatrix {
    matrix_with(rows, robusched_stats::spearman)
}

fn matrix_with(rows: &[MetricValues], corr: fn(&[f64], &[f64]) -> f64) -> CorrMatrix {
    let k = METRIC_LABELS.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(rows.len()); k];
    for r in rows {
        for (c, v) in r.oriented_vector().into_iter().enumerate() {
            columns[c].push(v);
        }
    }
    let mut values = vec![0.0; k * k];
    for i in 0..k {
        values[i * k + i] = 1.0;
        for j in i + 1..k {
            let r = corr(&columns[i], &columns[j]);
            values[i * k + j] = r;
            values[j * k + i] = r;
        }
    }
    CorrMatrix::from_values(
        METRIC_LABELS.iter().map(|s| s.to_string()).collect(),
        values,
    )
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shim is exercised on purpose
mod tests {
    use super::*;

    fn quick_cfg(k: usize) -> StudyConfig {
        StudyConfig {
            random_schedules: k,
            seed: 3,
            with_heuristics: true,
            with_cpop: false,
            ..Default::default()
        }
    }

    #[test]
    fn small_case_runs_and_correlates() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 5);
        let res = run_case(&scenario, &quick_cfg(200));
        assert_eq!(res.random.len(), 200);
        assert_eq!(res.heuristics.len(), 3);
        // Core finding: σ, lateness and 1−A(δ) strongly positively
        // correlated even at this small sample size.
        let idx = |name: &str| METRIC_LABELS.iter().position(|&l| l == name).unwrap();
        let r = res.pearson.get(idx("makespan_std"), idx("avg_lateness"));
        assert!(r > 0.9, "σ vs lateness Pearson = {r}");
        let r2 = res.pearson.get(idx("makespan_std"), idx("abs_prob"));
        assert!(r2 > 0.9, "σ vs 1−A Pearson = {r2}");
    }

    #[test]
    fn heuristics_beat_random_on_makespan() {
        let scenario = Scenario::paper_random(20, 4, 1.1, 11);
        let res = run_case(&scenario, &quick_cfg(300));
        let best_random = res
            .random
            .iter()
            .map(|m| m.expected_makespan)
            .fold(f64::INFINITY, f64::min);
        let median_random = {
            let mut v: Vec<f64> = res.random.iter().map(|m| m.expected_makespan).collect();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        for (name, m) in &res.heuristics {
            assert!(
                m.expected_makespan < median_random,
                "{name} ({}) not better than the median random ({median_random})",
                m.expected_makespan
            );
        }
        // At least one heuristic near the best random schedule.
        let best_h = res
            .heuristics
            .iter()
            .map(|(_, m)| m.expected_makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(best_h <= best_random * 1.1, "{best_h} vs {best_random}");
    }

    #[test]
    fn spearman_agrees_with_pearson_on_strong_cluster() {
        let scenario = Scenario::paper_random(12, 3, 1.1, 19);
        let res = run_case(&scenario, &quick_cfg(200));
        let sp = spearman_matrix(&res.random);
        let idx = |name: &str| METRIC_LABELS.iter().position(|&l| l == name).unwrap();
        // On the near-linear cluster, rank correlation is as strong.
        let r = sp.get(idx("makespan_std"), idx("avg_lateness"));
        assert!(r > 0.9, "Spearman σ~L = {r}");
        // Spearman matrix is symmetric with unit diagonal, like Pearson.
        for i in 0..sp.dim() {
            assert_eq!(sp.get(i, i), 1.0);
            for j in 0..sp.dim() {
                assert!((sp.get(i, j) - sp.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 7);
        let mut cfg = quick_cfg(130);
        cfg.threads = Some(1);
        let a = run_case(&scenario, &cfg);
        cfg.threads = Some(4);
        let b = run_case(&scenario, &cfg);
        for (x, y) in a.random.iter().zip(b.random.iter()) {
            assert_eq!(x.expected_makespan, y.expected_makespan);
        }
    }

    #[test]
    fn builder_reproduces_run_case_bit_for_bit() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 5);
        let legacy = run_case(&scenario, &quick_cfg(200));
        let res = StudyBuilder::new(&scenario)
            .random_schedules(200)
            .seed(3)
            .heuristics(&["HEFT", "BIL", "Hyb.BMCT"])
            .buffer_metrics(true)
            .run()
            .unwrap();
        let random = res.random.as_ref().unwrap();
        assert_eq!(random.len(), legacy.random.len());
        for (a, b) in random.iter().zip(legacy.random.iter()) {
            assert_eq!(a, b);
        }
        for ((na, ma), (nb, mb)) in res.heuristics.iter().zip(legacy.heuristics.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ma, mb);
        }
        let rebuilt = pearson_matrix(random);
        for i in 0..rebuilt.dim() {
            for j in 0..rebuilt.dim() {
                assert_eq!(rebuilt.get(i, j), legacy.pearson.get(i, j));
            }
        }
    }

    #[test]
    fn streamed_matrices_match_buffered_within_1e12() {
        let scenario = Scenario::paper_random(12, 3, 1.1, 23);
        let res = StudyBuilder::new(&scenario)
            .random_schedules(200)
            .seed(9)
            .buffer_metrics(true)
            .run()
            .unwrap();
        let rows = res.random.as_ref().unwrap();
        let pearson_buf = pearson_matrix(rows);
        let pearson_str = res.pearson_streamed();
        let spearman_buf = spearman_matrix(rows);
        let spearman_str = res.spearman_streamed();
        assert!(res.reservoir.is_exact());
        for i in 0..pearson_buf.dim() {
            for j in 0..pearson_buf.dim() {
                assert!(
                    (pearson_buf.get(i, j) - pearson_str.get(i, j)).abs() < 1e-12,
                    "Pearson ({i},{j}): {} vs {}",
                    pearson_buf.get(i, j),
                    pearson_str.get(i, j)
                );
                assert!(
                    (spearman_buf.get(i, j) - spearman_str.get(i, j)).abs() < 1e-12,
                    "Spearman ({i},{j}): {} vs {}",
                    spearman_buf.get(i, j),
                    spearman_str.get(i, j)
                );
            }
        }
    }

    #[test]
    fn streamed_moments_identical_across_thread_counts() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 7);
        let run_with = |threads: usize| {
            StudyBuilder::new(&scenario)
                .random_schedules(130)
                .seed(3)
                .threads(threads)
                .run()
                .unwrap()
        };
        let a = run_with(1);
        let b = run_with(4);
        let (pa, pb) = (a.pearson_streamed(), b.pearson_streamed());
        let (sa, sb) = (a.spearman_streamed(), b.spearman_streamed());
        for i in 0..pa.dim() {
            for j in 0..pa.dim() {
                assert_eq!(pa.get(i, j), pb.get(i, j), "Pearson cell ({i},{j})");
                assert_eq!(sa.get(i, j), sb.get(i, j), "Spearman cell ({i},{j})");
            }
        }
    }

    #[test]
    fn sink_receives_rows_in_sampling_order() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 13);
        let mut indices = Vec::new();
        let mut means = Vec::new();
        let mut sink = |idx: usize, m: &MetricValues| {
            indices.push(idx);
            means.push(m.expected_makespan);
        };
        let res = StudyBuilder::new(&scenario)
            .random_schedules(150)
            .seed(5)
            .threads(4)
            .buffer_metrics(true)
            .sink(&mut sink)
            .run()
            .unwrap();
        assert_eq!(indices, (0..150).collect::<Vec<_>>());
        let buffered: Vec<f64> = res
            .random
            .unwrap()
            .iter()
            .map(|m| m.expected_makespan)
            .collect();
        assert_eq!(means, buffered);
    }

    #[test]
    fn builder_error_paths() {
        let scenario = Scenario::paper_random(8, 2, 1.1, 1);
        assert_eq!(
            StudyBuilder::new(&scenario)
                .random_schedules(0)
                .run()
                .unwrap_err(),
            StudyError::NoSchedules
        );
        assert_eq!(
            StudyBuilder::new(&scenario)
                .random_schedules(10)
                .threads(0)
                .run()
                .unwrap_err(),
            StudyError::ZeroThreads
        );
        assert_eq!(
            StudyBuilder::new(&scenario)
                .random_schedules(10)
                .reservoir_capacity(1)
                .run()
                .unwrap_err(),
            StudyError::ReservoirTooSmall(1)
        );
        assert_eq!(
            StudyBuilder::new(&scenario)
                .random_schedules(10)
                .heuristics(&["NOPE"])
                .run()
                .unwrap_err(),
            StudyError::UnknownHeuristic("NOPE".into())
        );
        assert_eq!(
            StudyBuilder::new(&scenario)
                .random_schedules(10)
                .evaluator_named("exact")
                .run()
                .unwrap_err(),
            StudyError::UnknownEvaluator("exact".into())
        );
    }

    #[test]
    fn worker_panic_surfaces_as_study_error() {
        use robusched_randvar::DiscreteRv;
        use robusched_sched::Schedule;

        /// Panics on every evaluation — drives the first-panic capture
        /// path without a NaN or a poisoned lock in sight.
        struct PanickingEvaluator;
        impl Evaluator for PanickingEvaluator {
            fn name(&self) -> &str {
                "panicker"
            }
            fn evaluate_with(
                &self,
                _scenario: &Scenario,
                _schedule: &Schedule,
                _cx: &mut EvalContext,
            ) -> DiscreteRv {
                panic!("injected failure");
            }
        }

        let scenario = Scenario::paper_random(10, 3, 1.1, 5);
        // Silence the default panic hook for the duration: every worker
        // thread would otherwise print a backtrace banner.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = StudyBuilder::new(&scenario)
            .random_schedules(300)
            .threads(4)
            .evaluator(Box::new(PanickingEvaluator))
            .run()
            .unwrap_err();
        std::panic::set_hook(hook);
        match err {
            StudyError::WorkerPanic(msg) => {
                assert!(msg.contains("injected failure"), "message was: {msg}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn swapping_evaluators_preserves_the_cluster() {
        // The same study under Spelde's backend: σ ~ lateness must stay
        // strongly correlated (the backbone of the ext-backends study).
        let scenario = Scenario::paper_random(10, 3, 1.1, 5);
        let res = StudyBuilder::new(&scenario)
            .random_schedules(120)
            .seed(3)
            .evaluator_named("spelde")
            .run()
            .unwrap();
        let idx = |name: &str| METRIC_LABELS.iter().position(|&l| l == name).unwrap();
        let r = res
            .pearson_streamed()
            .get(idx("makespan_std"), idx("avg_lateness"));
        assert!(r > 0.9, "Spelde σ~L = {r}");
    }
}
