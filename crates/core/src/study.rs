//! The experimental protocol of §V–§VI on one scenario ("case").
//!
//! Per case the paper evaluates 10 000 uniform random schedules (2 000 for
//! the 100-task cases) plus the three heuristics, computes every metric for
//! each schedule from its analytic makespan distribution, and reports the
//! Pearson correlation matrix between the metrics. [`run_case`] implements
//! exactly that, parallelized over schedules with crossbeam (fixed
//! chunk-index seeding keeps the output identical for any thread count).

use crate::metrics::{compute_metrics, MetricOptions, MetricValues, METRIC_LABELS};
use crossbeam::thread;
use robusched_platform::Scenario;
use robusched_randvar::derive_seed;
use robusched_sched::{bil, cpop, heft, hyb_bmct, random_schedule, Schedule};
use robusched_stats::CorrMatrix;
use robusched_stochastic::evaluate_classic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Study configuration for one case.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of random schedules (paper: 10 000; 2 000 for n = 100).
    pub random_schedules: usize,
    /// Master seed for schedule sampling.
    pub seed: u64,
    /// Probabilistic-metric parameters.
    pub metric_opts: MetricOptions,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Also evaluate the heuristics (HEFT, BIL, Hyb.BMCT).
    pub with_heuristics: bool,
    /// Additionally evaluate CPOP (extension beyond the paper's set).
    pub with_cpop: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            random_schedules: 10_000,
            seed: 1,
            metric_opts: MetricOptions::default(),
            threads: None,
            with_heuristics: true,
            with_cpop: false,
        }
    }
}

/// The outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Metrics of every random schedule, in sampling order.
    pub random: Vec<MetricValues>,
    /// Metrics of the heuristic schedules, labeled.
    pub heuristics: Vec<(String, MetricValues)>,
    /// Pearson correlation matrix over the random schedules, in the
    /// paper's plotting orientation (see
    /// [`MetricValues::oriented_vector`]).
    pub pearson: CorrMatrix,
}

/// Schedules per work chunk (fixed for thread-count determinism).
const CHUNK: usize = 64;

/// Runs the §V protocol on one scenario.
///
/// # Panics
/// Panics if `random_schedules == 0`.
pub fn run_case(scenario: &Scenario, cfg: &StudyConfig) -> CaseResult {
    assert!(cfg.random_schedules > 0, "need at least one schedule");
    let m = scenario.machine_count();

    let eval_one = |schedule: &Schedule| -> MetricValues {
        let rv = evaluate_classic(scenario, schedule);
        compute_metrics(scenario, schedule, &rv, &cfg.metric_opts)
    };

    // ---- Random schedules, parallel with fixed chunk seeding. ----
    let mut random: Vec<MetricValues> = Vec::with_capacity(cfg.random_schedules);
    {
        let mut slots: Vec<Option<MetricValues>> = vec![None; cfg.random_schedules];
        let chunks: Vec<&mut [Option<MetricValues>]> = slots.chunks_mut(CHUNK).collect();
        let n_chunks = chunks.len();
        let chunk_slots: Vec<std::sync::Mutex<Option<&mut [Option<MetricValues>]>>> = chunks
            .into_iter()
            .map(|c| std::sync::Mutex::new(Some(c)))
            .collect();
        let next = AtomicUsize::new(0);
        let threads = cfg
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1);
        thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let slice = chunk_slots[c]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("chunk claimed once");
                    for (k, slot) in slice.iter_mut().enumerate() {
                        let idx = c * CHUNK + k;
                        let sched = random_schedule(
                            &scenario.graph.dag,
                            m,
                            derive_seed(cfg.seed, idx as u64),
                        );
                        *slot = Some(eval_one(&sched));
                    }
                });
            }
        })
        .expect("study worker panicked");
        random.extend(slots.into_iter().map(|s| s.expect("all chunks done")));
    }

    // ---- Heuristics. ----
    let mut heuristics = Vec::new();
    if cfg.with_heuristics {
        heuristics.push(("HEFT".to_string(), eval_one(&heft(scenario))));
        heuristics.push(("BIL".to_string(), eval_one(&bil(scenario))));
        heuristics.push(("Hyb.BMCT".to_string(), eval_one(&hyb_bmct(scenario))));
        if cfg.with_cpop {
            heuristics.push(("CPOP".to_string(), eval_one(&cpop(scenario))));
        }
    }

    // ---- Correlation matrix over the random schedules. ----
    let pearson = pearson_matrix(&random);

    CaseResult {
        random,
        heuristics,
        pearson,
    }
}

/// The §VI Pearson matrix of a metric sample (paper orientation).
pub fn pearson_matrix(rows: &[MetricValues]) -> CorrMatrix {
    matrix_with(rows, robusched_stats::pearson)
}

/// Spearman (rank) correlation matrix of a metric sample — an extension
/// robust to the "slightly curved set of points" the paper notes Pearson
/// merely tolerates.
pub fn spearman_matrix(rows: &[MetricValues]) -> CorrMatrix {
    matrix_with(rows, robusched_stats::spearman)
}

fn matrix_with(rows: &[MetricValues], corr: fn(&[f64], &[f64]) -> f64) -> CorrMatrix {
    let k = METRIC_LABELS.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(rows.len()); k];
    for r in rows {
        for (c, v) in r.oriented_vector().into_iter().enumerate() {
            columns[c].push(v);
        }
    }
    let mut values = vec![0.0; k * k];
    for i in 0..k {
        values[i * k + i] = 1.0;
        for j in i + 1..k {
            let r = corr(&columns[i], &columns[j]);
            values[i * k + j] = r;
            values[j * k + i] = r;
        }
    }
    CorrMatrix::from_values(
        METRIC_LABELS.iter().map(|s| s.to_string()).collect(),
        values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(k: usize) -> StudyConfig {
        StudyConfig {
            random_schedules: k,
            seed: 3,
            with_heuristics: true,
            with_cpop: false,
            ..Default::default()
        }
    }

    #[test]
    fn small_case_runs_and_correlates() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 5);
        let res = run_case(&scenario, &quick_cfg(200));
        assert_eq!(res.random.len(), 200);
        assert_eq!(res.heuristics.len(), 3);
        // Core finding: σ, lateness and 1−A(δ) strongly positively
        // correlated even at this small sample size.
        let idx = |name: &str| METRIC_LABELS.iter().position(|&l| l == name).unwrap();
        let r = res.pearson.get(idx("makespan_std"), idx("avg_lateness"));
        assert!(r > 0.9, "σ vs lateness Pearson = {r}");
        let r2 = res.pearson.get(idx("makespan_std"), idx("abs_prob"));
        assert!(r2 > 0.9, "σ vs 1−A Pearson = {r2}");
    }

    #[test]
    fn heuristics_beat_random_on_makespan() {
        let scenario = Scenario::paper_random(20, 4, 1.1, 11);
        let res = run_case(&scenario, &quick_cfg(300));
        let best_random = res
            .random
            .iter()
            .map(|m| m.expected_makespan)
            .fold(f64::INFINITY, f64::min);
        let median_random = {
            let mut v: Vec<f64> = res.random.iter().map(|m| m.expected_makespan).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        for (name, m) in &res.heuristics {
            assert!(
                m.expected_makespan < median_random,
                "{name} ({}) not better than the median random ({median_random})",
                m.expected_makespan
            );
        }
        // At least one heuristic near the best random schedule.
        let best_h = res
            .heuristics
            .iter()
            .map(|(_, m)| m.expected_makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(best_h <= best_random * 1.1, "{best_h} vs {best_random}");
    }

    #[test]
    fn spearman_agrees_with_pearson_on_strong_cluster() {
        let scenario = Scenario::paper_random(12, 3, 1.1, 19);
        let res = run_case(&scenario, &quick_cfg(200));
        let sp = spearman_matrix(&res.random);
        let idx = |name: &str| METRIC_LABELS.iter().position(|&l| l == name).unwrap();
        // On the near-linear cluster, rank correlation is as strong.
        let r = sp.get(idx("makespan_std"), idx("avg_lateness"));
        assert!(r > 0.9, "Spearman σ~L = {r}");
        // Spearman matrix is symmetric with unit diagonal, like Pearson.
        for i in 0..sp.dim() {
            assert_eq!(sp.get(i, i), 1.0);
            for j in 0..sp.dim() {
                assert!((sp.get(i, j) - sp.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let scenario = Scenario::paper_random(10, 3, 1.1, 7);
        let mut cfg = quick_cfg(130);
        cfg.threads = Some(1);
        let a = run_case(&scenario, &cfg);
        cfg.threads = Some(4);
        let b = run_case(&scenario, &cfg);
        for (x, y) in a.random.iter().zip(b.random.iter()) {
            assert_eq!(x.expected_makespan, y.expected_makespan);
        }
    }
}
