//! The robustness metrics of §IV.

use robusched_platform::Scenario;
use robusched_randvar::DiscreteRv;
use robusched_sched::Schedule;
use robusched_stats::descriptive::{mean, population_std};
use robusched_stochastic::DisjunctiveGraph;

/// Labels of the eight §IV metrics, in the paper's Fig. 6 order.
pub const METRIC_LABELS: [&str; 8] = [
    "avg_makespan",
    "makespan_std",
    "makespan_entropy",
    "avg_slack",
    "slack_std",
    "avg_lateness",
    "abs_prob",
    "rel_prob",
];

/// Position of a metric label in [`METRIC_LABELS`] (and therefore in every
/// correlation matrix the study engine emits).
///
/// # Panics
/// Panics on an unknown label — label sets are compile-time constants, so
/// a miss is a programming error, not an input error.
pub fn metric_index(name: &str) -> usize {
    METRIC_LABELS
        .iter()
        .position(|&l| l == name)
        .unwrap_or_else(|| panic!("unknown metric label {name}"))
}

/// Parameters of the probabilistic metrics.
#[derive(Debug, Clone, Copy)]
pub struct MetricOptions {
    /// Half-width `δ` of the absolute window (paper: 0.1).
    pub delta: f64,
    /// Ratio `γ > 1` of the relative window (paper: 1.0003).
    pub gamma: f64,
}

impl Default for MetricOptions {
    fn default() -> Self {
        // §V: "we have chosen δ = 0.1 and γ = 1.0003 in order to have
        // values well distributed on the interval [0, 1]".
        Self {
            delta: 0.1,
            gamma: 1.0003,
        }
    }
}

/// All metric values of one schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricValues {
    /// Expected makespan `E(M)`.
    pub expected_makespan: f64,
    /// Makespan standard deviation `σ_M`.
    pub makespan_std: f64,
    /// Differential entropy `h(M) = −∫ f ln f` (standard sign; see
    /// DESIGN.md on the paper's typo).
    pub makespan_entropy: f64,
    /// Average slack `S̄` (mean of per-task slacks on the mean-duration
    /// disjunctive graph).
    pub avg_slack: f64,
    /// Population standard deviation of the per-task slacks.
    pub slack_std: f64,
    /// Average lateness `L = E[M | M > E(M)] − E(M)`.
    pub avg_lateness: f64,
    /// Absolute probabilistic metric `A(δ)`.
    pub prob_absolute: f64,
    /// Relative probabilistic metric `R(γ)`.
    pub prob_relative: f64,
    /// Extension: late fraction `P(M > E(M))` (the `R₂` of Shi et al.).
    pub late_fraction: f64,
    /// Extension: total slack `Σ sᵢ` (the raw sum of §IV's formula).
    pub total_slack: f64,
}

impl MetricValues {
    /// The §IV metric vector in [`METRIC_LABELS`] order, with the paper's
    /// plotting orientation applied: slack negated, probabilistic metrics
    /// inverted (`1 − ·`) — "for easing the reading of the plot, we
    /// inverted three metrics in order to have the optimization of the
    /// metrics corresponding to its minimization". Pearson coefficients
    /// computed on these columns reproduce the signs of Figs. 3–6.
    /// (Negating the slack is affinely equivalent to the paper's
    /// `max − S` inversion, so the coefficients are identical.)
    pub fn oriented_vector(&self) -> [f64; 8] {
        [
            self.expected_makespan,
            self.makespan_std,
            self.makespan_entropy,
            -self.avg_slack,
            self.slack_std,
            self.avg_lateness,
            1.0 - self.prob_absolute,
            1.0 - self.prob_relative,
        ]
    }
}

/// The three distribution-only robustness statistics (no schedule/slack
/// context): makespan standard deviation, average lateness
/// `L = E[M | M > E(M)] − E(M)`, and differential entropy — the quantities
/// the Monte-Carlo convergence study (`ext-mc-convergence`) measures
/// estimator error on, computed with exactly the conventions of
/// [`compute_metrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionStats {
    /// `E(M)`.
    pub mean: f64,
    /// `σ_M`.
    pub std_dev: f64,
    /// Average lateness `L`.
    pub avg_lateness: f64,
    /// Differential entropy `h(M)` (standard sign; see DESIGN.md §1).
    pub entropy: f64,
}

/// Computes [`DistributionStats`] from a makespan distribution.
pub fn distribution_stats(makespan: &DiscreteRv) -> DistributionStats {
    let e = makespan.mean();
    DistributionStats {
        mean: e,
        std_dev: makespan.std_dev(),
        avg_lateness: makespan
            .conditional_mean_above(e)
            .map_or(0.0, |m_late| m_late - e),
        entropy: makespan.entropy(),
    }
}

/// Computes every §IV metric for one schedule given its makespan
/// distribution (produced by any of the `robusched-stochastic`
/// evaluators).
pub fn compute_metrics(
    scenario: &Scenario,
    schedule: &Schedule,
    makespan: &DiscreteRv,
    opts: &MetricOptions,
) -> MetricValues {
    let e = makespan.mean();
    let std = makespan.std_dev();
    let entropy = makespan.entropy();
    let lateness = makespan
        .conditional_mean_above(e)
        .map_or(0.0, |m_late| m_late - e);
    let late_fraction = 1.0 - makespan.cdf_at(e);
    let prob_absolute = makespan.prob_between(e - opts.delta, e + opts.delta);
    let prob_relative = makespan.prob_between(e / opts.gamma, e * opts.gamma);

    let (avg_slack, slack_std, total_slack) = slack_metrics(scenario, schedule, e);

    MetricValues {
        expected_makespan: e,
        makespan_std: std,
        makespan_entropy: entropy,
        avg_slack,
        slack_std,
        avg_lateness: lateness,
        prob_absolute,
        prob_relative,
        late_fraction,
        total_slack,
    }
}

/// Slack metrics on the mean-duration disjunctive graph.
///
/// §IV: `sᵢ = M − Bl(i) − Tl(i)` where `M` is the average makespan and the
/// levels use "the average value of … the task duration and the
/// communication duration". Returns `(mean, population std, sum)`.
pub fn slack_metrics(
    scenario: &Scenario,
    schedule: &Schedule,
    avg_makespan: f64,
) -> (f64, f64, f64) {
    let dg = DisjunctiveGraph::build(&scenario.graph.dag, schedule);
    let node_w = |v: usize| scenario.mean_task_cost(v, schedule.machine_of(v));
    let orig = &dg.orig_edge;
    let edge_w = |e: usize| -> f64 {
        match orig[e] {
            Some(orig_e) => {
                let (u, v) = dg.dag.edge_endpoints(e);
                scenario.mean_comm_cost(orig_e, schedule.machine_of(u), schedule.machine_of(v))
            }
            None => 0.0,
        }
    };
    let tl = dg.dag.top_levels(node_w, edge_w);
    let bl = dg.dag.bottom_levels(node_w, edge_w);
    let slacks: Vec<f64> = (0..scenario.task_count())
        .map(|v| avg_makespan - bl[v] - tl[v])
        .collect();
    (mean(&slacks), population_std(&slacks), slacks.iter().sum())
}

/// Online robustness counters of one dynamic (arrival-driven) run — the
/// metric family the 2007 paper's offline setting cannot express. Filled by
/// `robusched-dynamic`'s executor; the derived rates below are the
/// quantities the `ext-dynamic` study sweeps (deadline hit-rates, wasted
/// work, utilization — cf. the task-dropping literature, arXiv 2005.11050 /
/// 1901.09312).
///
/// All counters are plain sums over the run, so two runs with identical
/// event streams produce bit-identical values.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMetrics {
    /// Workflow instances that arrived.
    pub instances: usize,
    /// Instances accepted by the drop policy's admission check.
    pub admitted: usize,
    /// Instances that ran every task to completion.
    pub completed: usize,
    /// Completed instances that finished at or before their deadline.
    pub workflows_met: usize,
    /// Admitted instances abandoned mid-flight (pruned or reaped).
    pub dropped: usize,
    /// Instances refused at admission.
    pub rejected: usize,
    /// Tasks across all arrived instances.
    pub tasks_total: usize,
    /// Tasks that executed to completion.
    pub tasks_completed: usize,
    /// Completed tasks that finished at or before their instance deadline.
    pub tasks_met: usize,
    /// Total machine-time spent executing tasks.
    pub busy_time: f64,
    /// Machine-time spent on instances that never met their deadline
    /// (dropped, reaped, or completed late) plus failed attempts of
    /// on-time instances — the "wasted work" of the task-dropping papers,
    /// extended to faults.
    pub wasted_time: f64,
    /// Simulated time from the first arrival to the last event.
    pub horizon: f64,
    /// Machines of the simulated platform.
    pub machines: usize,
    /// Machine-time lost to outages (sum of repair intervals over the
    /// pool); zero without a fault model.
    pub down_time: f64,
    /// Machine-time of failed task attempts (killed mid-run or discarded
    /// by transient faults) — a subset of `busy_time`.
    pub lost_time: f64,
    /// Machine failures injected by the fault model.
    pub machine_failures: usize,
    /// Running tasks killed by machine failures.
    pub killed_tasks: usize,
    /// Task attempts that completed but were discarded by transient
    /// faults.
    pub transient_faults: usize,
    /// Task re-dispatches granted by the recovery policy.
    pub retries: usize,
}

impl OnlineMetrics {
    /// Fraction of *arrived* workflows that met their deadline (rejections
    /// and drops count as misses — the denominator a dropping policy must
    /// not be allowed to shrink).
    pub fn workflow_hit_rate(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        self.workflows_met as f64 / self.instances as f64
    }

    /// Fraction of all arrived tasks that completed within their instance
    /// deadline.
    pub fn task_hit_rate(&self) -> f64 {
        if self.tasks_total == 0 {
            return 0.0;
        }
        self.tasks_met as f64 / self.tasks_total as f64
    }

    /// Fraction of executed machine-time that was wasted on instances that
    /// missed their deadline.
    pub fn wasted_fraction(&self) -> f64 {
        if self.busy_time <= 0.0 {
            return 0.0;
        }
        self.wasted_time / self.busy_time
    }

    /// Mean machine utilization over the simulated horizon.
    pub fn utilization(&self) -> f64 {
        let cap = self.machines as f64 * self.horizon;
        if cap <= 0.0 {
            return 0.0;
        }
        self.busy_time / cap
    }

    /// Utilization of the capacity that actually existed: busy time over
    /// `m × horizon` minus outage time. Equal to
    /// [`utilization`](OnlineMetrics::utilization) without faults; under
    /// faults it separates "machines idle" from "machines gone".
    pub fn effective_utilization(&self) -> f64 {
        let cap = self.machines as f64 * self.horizon - self.down_time;
        if cap <= 0.0 {
            return 0.0;
        }
        self.busy_time / cap
    }

    /// Useful-work rate: machine-time that contributed to on-time
    /// completions (`busy − wasted`) over total capacity — the goodput of
    /// the fault/recovery sweep.
    pub fn goodput(&self) -> f64 {
        let cap = self.machines as f64 * self.horizon;
        if cap <= 0.0 {
            return 0.0;
        }
        ((self.busy_time - self.wasted_time) / cap).max(0.0)
    }

    /// Mean recovery re-dispatches per arrived instance.
    pub fn retries_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        self.retries as f64 / self.instances as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusched_dag::generators;
    use robusched_numeric::approx_eq;
    use robusched_platform::{CostMatrix, Platform, UncertaintyModel};
    use robusched_stochastic::evaluate_classic;

    fn case() -> (Scenario, Schedule, DiscreteRv) {
        let s = Scenario::paper_random(15, 3, 1.1, 21);
        let sched = robusched_sched::heft(&s);
        let rv = evaluate_classic(&s, &sched);
        (s, sched, rv)
    }

    #[test]
    fn all_metrics_finite_and_sane() {
        let (s, sched, rv) = case();
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        assert!(m.expected_makespan > 0.0);
        assert!(m.makespan_std >= 0.0);
        assert!(m.makespan_entropy.is_finite());
        assert!((0.0..=1.0).contains(&m.prob_absolute));
        assert!((0.0..=1.0).contains(&m.prob_relative));
        assert!((0.0..=1.0).contains(&m.late_fraction));
        assert!(m.avg_lateness >= 0.0);
        assert!(m.avg_lateness <= rv.span());
    }

    #[test]
    fn chain_schedule_has_zero_slack() {
        // Fully sequential schedule: every task on the critical path.
        let tg = generators::chain(4);
        let costs = CostMatrix::from_rows(4, 1, vec![10.0; 4]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(1),
            costs,
            UncertaintyModel::paper(1.1),
        );
        let sched = Schedule::new(vec![0; 4], vec![vec![0, 1, 2, 3]]);
        let rv = evaluate_classic(&s, &sched);
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        // Slack ≈ 0 (up to the tiny analytic-mean vs level-sum mismatch).
        assert!(
            m.avg_slack.abs() < 0.05 * m.expected_makespan,
            "slack {}",
            m.avg_slack
        );
        assert!(m.slack_std.abs() < 0.05 * m.expected_makespan);
    }

    #[test]
    fn parallel_branch_creates_slack() {
        // Fork-join with one long and one short branch: the short branch
        // task has positive slack.
        let tg = generators::fork_join(2);
        let costs = CostMatrix::from_rows(3, 2, vec![100.0, 100.0, 1.0, 1.0, 10.0, 10.0]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(2),
            costs,
            UncertaintyModel::paper(1.01),
        );
        let sched = Schedule::new(vec![0, 1, 0], vec![vec![0, 2], vec![1]]);
        let rv = evaluate_classic(&s, &sched);
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        assert!(m.avg_slack > 10.0, "avg slack {}", m.avg_slack);
        assert!(m.slack_std > 10.0, "slack std {}", m.slack_std);
    }

    #[test]
    fn probabilistic_metrics_monotone_in_window() {
        let (s, sched, rv) = case();
        let narrow = compute_metrics(
            &s,
            &sched,
            &rv,
            &MetricOptions {
                delta: 0.05,
                gamma: 1.0001,
            },
        );
        let wide = compute_metrics(
            &s,
            &sched,
            &rv,
            &MetricOptions {
                delta: 1.0,
                gamma: 1.01,
            },
        );
        assert!(wide.prob_absolute >= narrow.prob_absolute);
        assert!(wide.prob_relative >= narrow.prob_relative);
    }

    #[test]
    fn lateness_matches_gaussian_rule_of_thumb() {
        // For the near-Gaussian makespan, L ≈ σ·√(2/π).
        let (s, sched, rv) = case();
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        let expect = m.makespan_std * (2.0 / std::f64::consts::PI).sqrt();
        assert!(
            (m.avg_lateness - expect).abs() < 0.5 * expect,
            "L {} vs gaussian {}",
            m.avg_lateness,
            expect
        );
    }

    #[test]
    fn oriented_vector_signs() {
        let (s, sched, rv) = case();
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        let v = m.oriented_vector();
        assert_eq!(v[0], m.expected_makespan);
        assert_eq!(v[3], -m.avg_slack);
        assert!(approx_eq(v[6], 1.0 - m.prob_absolute, 1e-15));
        assert!(approx_eq(v[7], 1.0 - m.prob_relative, 1e-15));
    }

    #[test]
    fn deterministic_scenario_degenerates_gracefully() {
        let tg = generators::chain(3);
        let costs = CostMatrix::from_rows(3, 1, vec![5.0; 3]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(1),
            costs,
            UncertaintyModel::none(),
        );
        let sched = Schedule::new(vec![0; 3], vec![vec![0, 1, 2]]);
        let rv = evaluate_classic(&s, &sched);
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        assert_eq!(m.makespan_std, 0.0);
        assert_eq!(m.avg_lateness, 0.0);
        assert_eq!(m.prob_absolute, 1.0);
        assert_eq!(m.late_fraction, 0.0);
        assert_eq!(m.makespan_entropy, f64::NEG_INFINITY);
    }

    #[test]
    fn online_metrics_rates() {
        let m = OnlineMetrics {
            instances: 10,
            admitted: 8,
            completed: 6,
            workflows_met: 5,
            dropped: 2,
            rejected: 2,
            tasks_total: 100,
            tasks_completed: 70,
            tasks_met: 60,
            busy_time: 80.0,
            wasted_time: 20.0,
            horizon: 25.0,
            machines: 4,
            ..Default::default()
        };
        assert_eq!(m.workflow_hit_rate(), 0.5);
        assert_eq!(m.task_hit_rate(), 0.6);
        assert_eq!(m.wasted_fraction(), 0.25);
        assert_eq!(m.utilization(), 0.8);
        // Without faults the effective utilization is the utilization and
        // goodput is the non-wasted share.
        assert_eq!(m.effective_utilization(), m.utilization());
        assert_eq!(m.goodput(), 0.6);
        assert_eq!(m.retries_per_instance(), 0.0);
        // Outages shrink the effective capacity; retries average over
        // arrivals.
        let f = OnlineMetrics {
            down_time: 20.0,
            retries: 5,
            ..m
        };
        assert_eq!(f.effective_utilization(), 1.0);
        assert_eq!(f.retries_per_instance(), 0.5);
        // Degenerate denominators stay finite.
        let z = OnlineMetrics::default();
        assert_eq!(z.workflow_hit_rate(), 0.0);
        assert_eq!(z.task_hit_rate(), 0.0);
        assert_eq!(z.wasted_fraction(), 0.0);
        assert_eq!(z.utilization(), 0.0);
        assert_eq!(z.effective_utilization(), 0.0);
        assert_eq!(z.goodput(), 0.0);
        assert_eq!(z.retries_per_instance(), 0.0);
    }
}
