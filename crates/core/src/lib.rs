//! # robusched-core
//!
//! The paper's contribution: robustness metrics for stochastic DAG
//! schedules and the machinery that compares them.
//!
//! §IV defines the metric set; [`metrics`] implements all of them (plus the
//! `R₂` late-fraction metric of Shi, Jeannot & Dongarra that the related
//! work discusses):
//!
//! | metric | symbol | computed from |
//! |---|---|---|
//! | expected makespan | `E(M)` | makespan RV |
//! | makespan standard deviation | `σ_M` | makespan RV |
//! | makespan differential entropy | `h(M)` | makespan RV |
//! | average slack | `S̄` | mean-duration disjunctive graph |
//! | slack standard deviation | `σ_S` | per-task slacks |
//! | average lateness | `L` | makespan RV (`E[M′] − E[M]`) |
//! | absolute probabilistic | `A(δ)` | `P(E−δ ≤ M ≤ E+δ)` |
//! | relative probabilistic | `R(γ)` | `P(E/γ ≤ M ≤ γE)` |
//! | late fraction (ext.) | `R₂` | `P(M > E[M])` |
//!
//! [`study`] runs the paper's experimental protocol on a scenario: sample
//! thousands of random schedules (plus any registered heuristics),
//! evaluate every metric per schedule under a pluggable
//! [`robusched_stochastic::Evaluator`], and emit the Pearson correlation
//! matrix with the paper's plotting orientation (§VI inverts the slack and
//! the two probabilistic metrics so that "optimized" always means
//! "minimized"). [`StudyBuilder`] is the engine's entry point; its
//! parallel workers feed the [`streaming`] accumulators (Welford co-moment
//! matrix + rank reservoir) so correlation matrices need `O(k²)` memory
//! instead of materializing every row. The legacy [`run_case`] remains as
//! a deprecated buffering shim.

pub mod adversarial;
pub mod metrics;
pub mod optimize;
pub mod service;
pub mod streaming;
pub mod study;

pub use adversarial::{
    anneal, objective_by_name, objective_registry, AnnealConfig, AnnealResult, AnnealStats,
    ClusterDeficit, HeuristicRegret, Objective, ObjectiveReport, RankGap,
};
pub use metrics::{
    compute_metrics, distribution_stats, metric_index, DistributionStats, MetricOptions,
    MetricValues, OnlineMetrics, METRIC_LABELS,
};
pub use optimize::{pareto_search, ParetoPoint, SearchConfig};
pub use service::{
    EvalOutcome, EvalRequest, EvalResult, EvalService, ServiceConfig, ServiceError, ServiceStats,
    Ticket,
};
pub use streaming::{RankReservoir, StreamingMoments};
#[allow(deprecated)]
pub use study::run_case;
pub use study::{
    pearson_matrix, spearman_matrix, CaseResult, MetricSink, StudyBuilder, StudyConfig, StudyError,
    StudyResult,
};
