//! Biobjective local search over schedules: expected makespan vs. makespan
//! standard deviation.
//!
//! §VIII of the paper: *"at some point (for low makespan schedules) there
//! could be some trade-off to find"* — but random schedules only explore
//! the bulk of the space. This module walks toward the (E(M), σ_M) Pareto
//! front with a simple first-improvement local search over two move kinds:
//!
//! * **reassign** — move one task to another machine (keeping the eager
//!   order positions consistent);
//! * **swap** — exchange two adjacent tasks on one machine when precedence
//!   allows.
//!
//! Candidate schedules are scored with Spelde's CLT evaluation (two orders
//! of magnitude faster than the grid evaluator, and §V found the methods
//! agree); the final archive is re-scored with the classical evaluator.
//! The output is a Pareto archive of mutually non-dominated schedules.

use crate::metrics::MetricOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusched_platform::Scenario;
use robusched_randvar::derive_seed;
use robusched_sched::{heft, random_schedule, Schedule};
use robusched_stochastic::{evaluate_classic, evaluate_spelde};

/// One point of the Pareto archive.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The schedule.
    pub schedule: Schedule,
    /// Expected makespan (classical evaluator).
    pub expected_makespan: f64,
    /// Makespan standard deviation (classical evaluator).
    pub makespan_std: f64,
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Local-search iterations (move proposals).
    pub iterations: usize,
    /// Number of scalarization weights (each weight runs one descent).
    pub sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            iterations: 2_000,
            sweeps: 5,
            seed: 7,
        }
    }
}

/// Scores a schedule with the fast CLT evaluator.
fn fast_score(scenario: &Scenario, sched: &Schedule) -> (f64, f64) {
    let r = evaluate_spelde(scenario, sched);
    (r.mean, r.std_dev)
}

/// Proposes a neighbor of `sched` (reassign or adjacent swap); returns
/// `None` when the proposal is structurally invalid.
fn propose(scenario: &Scenario, sched: &Schedule, rng: &mut StdRng) -> Option<Schedule> {
    let n = scenario.task_count();
    let m = scenario.machine_count();
    let dag = &scenario.graph.dag;
    if rng.gen_bool(0.5) && m > 1 {
        // Reassign a random task to a random other machine, appending at a
        // position consistent with its current relative order.
        let t = rng.gen_range(0..n);
        let from = sched.machine_of(t);
        let mut to = rng.gen_range(0..m - 1);
        if to >= from {
            to += 1;
        }
        let mut assignment = sched.assignment().to_vec();
        assignment[t] = to;
        let mut orders: Vec<Vec<usize>> = (0..m).map(|p| sched.order_on(p).to_vec()).collect();
        orders[from].retain(|&x| x != t);
        // Insert into the target order at a random feasible slot.
        let pos = rng.gen_range(0..=orders[to].len());
        orders[to].insert(pos, t);
        Schedule::try_new(assignment, orders, dag).ok()
    } else {
        // Swap two adjacent tasks on one machine if no precedence connects
        // them.
        let p = rng.gen_range(0..m);
        let order = sched.order_on(p);
        if order.len() < 2 {
            return None;
        }
        let i = rng.gen_range(0..order.len() - 1);
        let (a, b) = (order[i], order[i + 1]);
        if dag.has_edge(a, b) {
            return None;
        }
        let mut orders: Vec<Vec<usize>> = (0..m).map(|q| sched.order_on(q).to_vec()).collect();
        orders[p].swap(i, i + 1);
        Schedule::try_new(sched.assignment().to_vec(), orders, dag).ok()
    }
}

/// Inserts into a Pareto archive, dropping dominated entries. Returns true
/// when the candidate enters the archive.
fn archive_insert(
    archive: &mut Vec<(f64, f64, Schedule)>,
    e: f64,
    s: f64,
    sched: &Schedule,
) -> bool {
    const EPS: f64 = 1e-12;
    if archive
        .iter()
        .any(|&(ae, as_, _)| ae <= e + EPS && as_ <= s + EPS)
    {
        return false;
    }
    archive.retain(|&(ae, as_, _)| !(e <= ae + EPS && s <= as_ + EPS));
    archive.push((e, s, sched.clone()));
    true
}

/// Runs the biobjective search; returns the Pareto archive sorted by
/// expected makespan, re-scored with the classical evaluator.
pub fn pareto_search(scenario: &Scenario, cfg: &SearchConfig) -> Vec<ParetoPoint> {
    let m = scenario.machine_count();
    let mut archive: Vec<(f64, f64, Schedule)> = Vec::new();

    for sweep in 0..cfg.sweeps {
        // Scalarization weight λ sweeps from makespan-only to σ-heavy.
        let lambda = if cfg.sweeps == 1 {
            1.0
        } else {
            // λ ∈ {0, …, ~20·σ-emphasis}: geometric-ish spread.
            (sweep as f64 / (cfg.sweeps - 1) as f64).powi(2) * 20.0
        };
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, sweep as u64));
        // Start from HEFT on even sweeps, a random schedule on odd ones.
        let mut current = if sweep % 2 == 0 {
            heft(scenario)
        } else {
            random_schedule(
                &scenario.graph.dag,
                m,
                derive_seed(cfg.seed, 1000 + sweep as u64),
            )
        };
        let (mut ce, mut cs) = fast_score(scenario, &current);
        archive_insert(&mut archive, ce, cs, &current);
        for _ in 0..cfg.iterations / cfg.sweeps.max(1) {
            let Some(cand) = propose(scenario, &current, &mut rng) else {
                continue;
            };
            let (e, s) = fast_score(scenario, &cand);
            archive_insert(&mut archive, e, s, &cand);
            if e + lambda * s < ce + lambda * cs {
                current = cand;
                ce = e;
                cs = s;
            }
        }
    }

    // Re-score the archive with the classical evaluator and re-filter (the
    // two evaluators rank almost identically, but be exact in the output).
    let mut exact: Vec<(f64, f64, Schedule)> = Vec::new();
    for (_, _, sched) in archive {
        let rv = evaluate_classic(scenario, &sched);
        archive_insert(&mut exact, rv.mean(), rv.std_dev(), &sched);
    }
    exact.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Thin near-identical neighbors (within 1e-5 relative in both
    // objectives) — they are distinct schedules but indistinguishable
    // trade-offs.
    let mut thinned: Vec<(f64, f64, Schedule)> = Vec::new();
    for (e, s, sched) in exact {
        let dup = thinned.last().is_some_and(|&(pe, ps, _)| {
            (e - pe).abs() <= 1e-5 * pe.abs().max(1.0)
                && (s - ps).abs() <= 1e-5 * ps.abs().max(1e-6)
        });
        if !dup {
            thinned.push((e, s, sched));
        }
    }
    thinned
        .into_iter()
        .map(|(e, s, schedule)| ParetoPoint {
            schedule,
            expected_makespan: e,
            makespan_std: s,
        })
        .collect()
}

/// Convenience: the archive's trade-off summary used by reports.
pub fn front_summary(points: &[ParetoPoint], opts: &MetricOptions) -> String {
    let _ = opts;
    let mut out = String::from("E(M)        σ_M\n");
    for p in points {
        out.push_str(&format!(
            "{:>9.3}  {:>8.4}\n",
            p.expected_makespan, p.makespan_std
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SearchConfig {
        SearchConfig {
            iterations: 400,
            sweeps: 3,
            seed: 5,
        }
    }

    #[test]
    fn archive_is_mutually_non_dominated() {
        let s = Scenario::paper_random(15, 3, 1.2, 11);
        let front = pareto_search(&s, &quick_cfg());
        assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dominates = a.expected_makespan <= b.expected_makespan + 1e-12
                        && a.makespan_std <= b.makespan_std + 1e-12;
                    assert!(
                        !dominates,
                        "point {i} dominates point {j}: ({}, {}) vs ({}, {})",
                        a.expected_makespan, a.makespan_std, b.expected_makespan, b.makespan_std
                    );
                }
            }
        }
        // Sorted by makespan ⇒ σ decreases along the front.
        for w in front.windows(2) {
            assert!(w[0].expected_makespan < w[1].expected_makespan + 1e-12);
            assert!(w[0].makespan_std >= w[1].makespan_std - 1e-12);
        }
    }

    #[test]
    fn search_not_worse_than_heft() {
        let s = Scenario::paper_random(15, 3, 1.2, 13);
        let front = pareto_search(&s, &quick_cfg());
        let heft_rv = evaluate_classic(&s, &heft(&s));
        // The best-makespan archive point is at least as good as HEFT
        // (HEFT seeds the search).
        let best = &front[0];
        assert!(
            best.expected_makespan <= heft_rv.mean() + 1e-6,
            "{} vs HEFT {}",
            best.expected_makespan,
            heft_rv.mean()
        );
    }

    #[test]
    fn schedules_in_archive_are_valid() {
        let s = Scenario::paper_random(12, 3, 1.2, 17);
        for p in pareto_search(&s, &quick_cfg()) {
            assert!(p.schedule.validate(&s.graph.dag).is_ok());
        }
    }

    #[test]
    fn proposals_preserve_validity() {
        let s = Scenario::paper_random(10, 3, 1.1, 19);
        let mut rng = StdRng::seed_from_u64(3);
        let base = heft(&s);
        let mut ok = 0;
        for _ in 0..200 {
            if let Some(c) = propose(&s, &base, &mut rng) {
                assert!(c.validate(&s.graph.dag).is_ok());
                ok += 1;
            }
        }
        assert!(ok > 50, "too few valid proposals: {ok}");
    }
}
