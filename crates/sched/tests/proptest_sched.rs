//! Property tests for the scheduling layer: every heuristic on every
//! random scenario must produce a valid, executable eager schedule whose
//! execution respects all constraints.

use proptest::prelude::*;
use robusched_platform::Scenario;
use robusched_sched::{
    bil, cpop, det_makespan, heft, hyb_bmct, random_schedule, sigma_heft, EagerPlan, Schedule,
};

/// Checks the physical validity of one deterministic execution: machine
/// exclusivity and precedence-with-communication timing.
fn check_execution(s: &Scenario, sched: &Schedule) -> Result<(), String> {
    let dag = &s.graph.dag;
    let plan = EagerPlan::new(dag, sched).map_err(|e| e.to_string())?;
    let r = plan.execute(
        dag,
        |v| s.det_task_cost(v, sched.machine_of(v)),
        |e, u, v| s.det_comm_cost(e, sched.machine_of(u), sched.machine_of(v)),
    );
    // Machine exclusivity: consecutive tasks on a machine do not overlap.
    for p in 0..sched.machine_count() {
        let order = sched.order_on(p);
        for w in order.windows(2) {
            if r.start[w[1]] < r.finish[w[0]] - 1e-9 {
                return Err(format!(
                    "overlap on machine {p}: task {} starts {} before {} finishes {}",
                    w[1], r.start[w[1]], w[0], r.finish[w[0]]
                ));
            }
        }
    }
    // Precedence + communication.
    for (u, v, e) in dag.edge_triples() {
        let comm = s.det_comm_cost(e, sched.machine_of(u), sched.machine_of(v));
        if r.start[v] < r.finish[u] + comm - 1e-9 {
            return Err(format!(
                "edge {u}->{v}: start {} < finish {} + comm {comm}",
                r.start[v], r.finish[u]
            ));
        }
    }
    // Task durations respected.
    for v in 0..s.task_count() {
        let dur = s.det_task_cost(v, sched.machine_of(v));
        if (r.finish[v] - r.start[v] - dur).abs() > 1e-9 {
            return Err(format!("task {v} duration mismatch"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn all_heuristics_produce_physical_schedules(
        n in 5usize..35,
        m in 2usize..6,
        ul_percent in 1u8..40,
        seed in 0u64..500,
    ) {
        let ul = 1.0 + ul_percent as f64 / 100.0;
        let s = Scenario::paper_random(n, m, ul, seed);
        for (name, sched) in [
            ("heft", heft(&s)),
            ("bil", bil(&s)),
            ("bmct", hyb_bmct(&s)),
            ("cpop", cpop(&s)),
            ("sigma_heft", sigma_heft(&s, 1.0)),
            ("random", random_schedule(&s.graph.dag, m, seed ^ 0x99)),
        ] {
            check_execution(&s, &sched)
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
        }
    }

    #[test]
    fn heuristics_never_worse_than_worst_random(
        n in 8usize..25,
        seed in 0u64..200,
    ) {
        let m = 4;
        let s = Scenario::paper_random(n, m, 1.1, seed);
        // The worst of a few random schedules bounds a sane heuristic.
        let worst = (0..5)
            .map(|k| det_makespan(&s, &random_schedule(&s.graph.dag, m, seed * 31 + k)))
            .fold(f64::NEG_INFINITY, f64::max);
        for (name, sched) in [("heft", heft(&s)), ("bil", bil(&s)), ("bmct", hyb_bmct(&s))] {
            let ms = det_makespan(&s, &sched);
            prop_assert!(
                ms <= worst * 1.05,
                "{name} ({ms}) worse than the worst random ({worst})"
            );
        }
    }

    #[test]
    fn heft_deterministic(
        n in 5usize..25,
        seed in 0u64..200,
    ) {
        let s = Scenario::paper_random(n, 3, 1.1, seed);
        let a = heft(&s);
        let b = heft(&s);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn single_machine_makespan_is_total_work(
        n in 3usize..20,
        seed in 0u64..100,
    ) {
        // On one machine every schedule's makespan is the sum of durations
        // (communications are free on-machine).
        let s = Scenario::paper_random(n, 1, 1.1, seed);
        let sched = random_schedule(&s.graph.dag, 1, seed);
        let total: f64 = (0..n).map(|v| s.det_task_cost(v, 0)).sum();
        let ms = det_makespan(&s, &sched);
        prop_assert!((ms - total).abs() < 1e-9, "{ms} vs {total}");
    }
}
