//! The eager executor.
//!
//! Given a schedule, the start dates of an eager execution are uniquely
//! determined by the durations in force: a task starts at the maximum of
//! (a) the finish of the task before it on its machine and (b) the arrival
//! of every predecessor's data. Those constraints form the *disjunctive
//! graph* (§II / \[15\]), whose topological order depends only on the
//! schedule — so we precompute it once per schedule ([`EagerPlan`]) and
//! replay it cheaply for every realization (the Monte-Carlo engine calls
//! [`EagerPlan::execute`] 100 000 times per schedule).

use crate::schedule::{Schedule, ScheduleError};
use robusched_dag::{Dag, EdgeId, NodeId};

/// Start/finish dates of one (deterministic or sampled) execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Start date per task.
    pub start: Vec<f64>,
    /// Finish date per task.
    pub finish: Vec<f64>,
    /// Completion time of the whole application.
    pub makespan: f64,
}

/// A schedule compiled for repeated eager execution: a topological order of
/// the disjunctive graph, the same-machine neighbors of every task, and the
/// disjunctive sinks (precomputed once so per-evaluation passes stop
/// rebuilding them — the analytic evaluators take the makespan as the max
/// over exactly these tasks).
#[derive(Debug, Clone)]
pub struct EagerPlan {
    order: Vec<NodeId>,
    prev_on_proc: Vec<Option<NodeId>>,
    next_on_proc: Vec<Option<NodeId>>,
    sinks: Vec<NodeId>,
}

impl EagerPlan {
    /// Compiles `schedule` against `dag`; fails if the eager execution
    /// would deadlock.
    pub fn new(dag: &Dag, schedule: &Schedule) -> Result<Self, ScheduleError> {
        let n = dag.node_count();
        let mut prev_on_proc = vec![None; n];
        for p in 0..schedule.machine_count() {
            let order = schedule.order_on(p);
            for w in order.windows(2) {
                prev_on_proc[w[1]] = Some(w[0]);
            }
        }
        // Kahn over DAG edges + prev_on_proc edges.
        let mut next_on_proc = vec![None; n];
        for (v, &prev) in prev_on_proc.iter().enumerate() {
            if let Some(u) = prev {
                next_on_proc[u] = Some(v);
            }
        }
        let mut indeg: Vec<usize> = (0..n)
            .map(|v| dag.in_degree(v) + usize::from(prev_on_proc[v].is_some()))
            .collect();
        let mut stack: Vec<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for &(v, _) in dag.succs(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
            if let Some(v) = next_on_proc[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if order.len() != n {
            return Err(ScheduleError::Deadlock);
        }
        // Disjunctive sinks: no DAG successor and no machine successor —
        // every other task's finish is dominated by one of these.
        let sinks: Vec<NodeId> = (0..n)
            .filter(|&v| dag.out_degree(v) == 0 && next_on_proc[v].is_none())
            .collect();
        Ok(Self {
            order,
            prev_on_proc,
            next_on_proc,
            sinks,
        })
    }

    /// The disjunctive-graph topological order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Same-machine predecessor of each task.
    pub fn prev_on_proc(&self) -> &[Option<NodeId>] {
        &self.prev_on_proc
    }

    /// Same-machine successor of each task.
    pub fn next_on_proc(&self) -> &[Option<NodeId>] {
        &self.next_on_proc
    }

    /// Tasks with neither a DAG successor nor a machine successor, in
    /// ascending task order. The makespan is the maximum of their finish
    /// times.
    pub fn disjunctive_sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Replays the eager execution with the given durations.
    ///
    /// `task_time(v)` is the duration of `v` on its assigned machine;
    /// `comm_time(e, u, v)` the communication delay of edge `e = (u, v)`
    /// given the (caller-known) machine pair. Both are called exactly once
    /// per task/edge.
    pub fn execute<FT, FC>(&self, dag: &Dag, mut task_time: FT, mut comm_time: FC) -> ExecResult
    where
        FT: FnMut(NodeId) -> f64,
        FC: FnMut(EdgeId, NodeId, NodeId) -> f64,
    {
        let n = dag.node_count();
        let mut start = vec![0.0f64; n];
        let mut finish = vec![0.0f64; n];
        for &v in &self.order {
            let mut ready = 0.0f64;
            if let Some(u) = self.prev_on_proc[v] {
                ready = finish[u];
            }
            for &(u, e) in dag.preds(v) {
                let arrival = finish[u] + comm_time(e, u, v);
                if arrival > ready {
                    ready = arrival;
                }
            }
            start[v] = ready;
            finish[v] = ready + task_time(v);
        }
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        ExecResult {
            start,
            finish,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn two_machine_diamond_execution() {
        let dag = diamond();
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        // Unit tasks; cross-machine comm = 10 on (0,2) and (2,3).
        let r = plan.execute(
            &dag,
            |_| 1.0,
            |_, u, v| {
                let pu = s.machine_of(u);
                let pv = s.machine_of(v);
                if pu == pv {
                    0.0
                } else {
                    10.0
                }
            },
        );
        assert_eq!(r.start[0], 0.0);
        assert_eq!(r.finish[0], 1.0);
        // Task 2 on machine 1 waits for comm: 1 + 10.
        assert_eq!(r.start[2], 11.0);
        assert_eq!(r.finish[2], 12.0);
        // Task 1 on machine 0 right after 0.
        assert_eq!(r.start[1], 1.0);
        // Task 3 waits for 2's data (12 + 10 = 22) vs 1's finish (2).
        assert_eq!(r.start[3], 22.0);
        assert_eq!(r.makespan, 23.0);
    }

    #[test]
    fn sequential_schedule_sums_durations() {
        let dag = diamond();
        let s = Schedule::new(vec![0; 4], vec![vec![0, 1, 2, 3]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let r = plan.execute(&dag, |v| (v + 1) as f64, |_, _, _| 0.0);
        // Sum of 1+2+3+4 = 10 (co-located ⇒ no comm).
        assert_eq!(r.makespan, 10.0);
        // Starts are cumulative.
        assert_eq!(r.start, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn machine_order_delays_independent_task() {
        // Independent tasks serialized on one machine wait for each other.
        let mut dag = Dag::new(2);
        let _ = &mut dag; // no edges
        let s = Schedule::new(vec![0, 0], vec![vec![1, 0]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let r = plan.execute(&dag, |_| 2.0, |_, _, _| 0.0);
        assert_eq!(r.start[1], 0.0);
        assert_eq!(r.start[0], 2.0);
        assert_eq!(r.makespan, 4.0);
    }

    #[test]
    fn deadlock_rejected() {
        let dag = diamond();
        let s = Schedule::new(vec![0; 4], vec![vec![3, 2, 1, 0]]);
        assert!(EagerPlan::new(&dag, &s).is_err());
    }

    #[test]
    fn disjunctive_sinks_precomputed() {
        let dag = diamond();
        // Machine 0 runs 0,1,3; machine 1 runs 2: only task 3 is a sink
        // (task 2 has a DAG successor, tasks 0/1 have machine successors).
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        assert_eq!(plan.disjunctive_sinks(), &[3]);
        assert_eq!(plan.next_on_proc()[0], Some(1));
        assert_eq!(plan.next_on_proc()[1], Some(3));
        assert_eq!(plan.next_on_proc()[2], None);
        assert_eq!(plan.next_on_proc()[3], None);
        // Two independent tasks on two machines: both are sinks.
        let mut free = Dag::new(2);
        let _ = &mut free;
        let s2 = Schedule::new(vec![0, 1], vec![vec![0], vec![1]]);
        let plan2 = EagerPlan::new(&free, &s2).unwrap();
        assert_eq!(plan2.disjunctive_sinks(), &[0, 1]);
    }

    #[test]
    fn topo_order_respects_both_edge_kinds() {
        let dag = diamond();
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in plan.topo_order().iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v, _) in dag.edge_triples() {
            assert!(pos[u] < pos[v]);
        }
        assert!(pos[1] < pos[3]); // same-machine order 1 before 3
    }
}
