//! The eager executor.
//!
//! Given a schedule, the start dates of an eager execution are uniquely
//! determined by the durations in force: a task starts at the maximum of
//! (a) the finish of the task before it on its machine and (b) the arrival
//! of every predecessor's data. Those constraints form the *disjunctive
//! graph* (§II / \[15\]), whose topological order depends only on the
//! schedule — so we precompute it once per schedule ([`EagerPlan`]) and
//! replay it cheaply for every realization (the Monte-Carlo engine calls
//! [`EagerPlan::execute`] 100 000 times per schedule).

use crate::schedule::{Schedule, ScheduleError};
use robusched_dag::{Dag, EdgeId, NodeId};

/// Start/finish dates of one (deterministic or sampled) execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Start date per task.
    pub start: Vec<f64>,
    /// Finish date per task.
    pub finish: Vec<f64>,
    /// Completion time of the whole application.
    pub makespan: f64,
}

/// Reusable per-thread buffers for [`EagerPlan::replay_block`]: the
/// `[task × lane]` finish matrix and the ready-time row. Create one per
/// worker and reuse it across blocks — the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    finish: Vec<f64>,
    ready: Vec<f64>,
}

impl ReplayScratch {
    /// Empty scratch; buffers grow on first replay and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A schedule compiled for repeated eager execution: a topological order of
/// the disjunctive graph, the same-machine neighbors of every task, and the
/// disjunctive sinks (precomputed once so per-evaluation passes stop
/// rebuilding them — the analytic evaluators take the makespan as the max
/// over exactly these tasks).
#[derive(Debug, Clone)]
pub struct EagerPlan {
    order: Vec<NodeId>,
    prev_on_proc: Vec<Option<NodeId>>,
    next_on_proc: Vec<Option<NodeId>>,
    sinks: Vec<NodeId>,
}

impl EagerPlan {
    /// Compiles `schedule` against `dag`; fails if the eager execution
    /// would deadlock.
    pub fn new(dag: &Dag, schedule: &Schedule) -> Result<Self, ScheduleError> {
        let n = dag.node_count();
        let mut prev_on_proc = vec![None; n];
        for p in 0..schedule.machine_count() {
            let order = schedule.order_on(p);
            for w in order.windows(2) {
                prev_on_proc[w[1]] = Some(w[0]);
            }
        }
        // Kahn over DAG edges + prev_on_proc edges.
        let mut next_on_proc = vec![None; n];
        for (v, &prev) in prev_on_proc.iter().enumerate() {
            if let Some(u) = prev {
                next_on_proc[u] = Some(v);
            }
        }
        let mut indeg: Vec<usize> = (0..n)
            .map(|v| dag.in_degree(v) + usize::from(prev_on_proc[v].is_some()))
            .collect();
        let mut stack: Vec<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for &(v, _) in dag.succs(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
            if let Some(v) = next_on_proc[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if order.len() != n {
            return Err(ScheduleError::Deadlock);
        }
        // Disjunctive sinks: no DAG successor and no machine successor —
        // every other task's finish is dominated by one of these.
        let sinks: Vec<NodeId> = (0..n)
            .filter(|&v| dag.out_degree(v) == 0 && next_on_proc[v].is_none())
            .collect();
        Ok(Self {
            order,
            prev_on_proc,
            next_on_proc,
            sinks,
        })
    }

    /// The disjunctive-graph topological order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Same-machine predecessor of each task.
    pub fn prev_on_proc(&self) -> &[Option<NodeId>] {
        &self.prev_on_proc
    }

    /// Same-machine successor of each task.
    pub fn next_on_proc(&self) -> &[Option<NodeId>] {
        &self.next_on_proc
    }

    /// Tasks with neither a DAG successor nor a machine successor, in
    /// ascending task order. The makespan is the maximum of their finish
    /// times.
    pub fn disjunctive_sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Replays `lanes` independent realizations at once over
    /// structure-of-arrays duration blocks — the Monte-Carlo engine's hot
    /// kernel.
    ///
    /// `task_dur` is an `n × width` row-major matrix (`task_dur[v·width + r]`
    /// is task `v`'s duration in realization lane `r`), `comm_dur` the
    /// analogous `e × width` matrix over *original DAG edge* indices. Only
    /// the first `lanes ≤ width` lanes of each row are read. On return,
    /// `out[r]` holds lane `r`'s makespan.
    ///
    /// Lane `r`'s result is exactly (bit-for-bit) what
    /// [`execute`](Self::execute) computes from the same durations: the
    /// kernel performs the identical ready-time recurrence per lane — the
    /// SoA layout only changes the loop order across lanes, never the
    /// floating-point operation order within one.
    ///
    /// # Panics
    /// Panics if a slice is shorter than its row layout requires,
    /// `lanes > width`, or `out.len() != lanes`.
    #[allow(clippy::too_many_arguments)] // a kernel call: two matrices + layout + scratch + sink
    pub fn replay_block(
        &self,
        dag: &Dag,
        task_dur: &[f64],
        comm_dur: &[f64],
        width: usize,
        lanes: usize,
        scratch: &mut ReplayScratch,
        out: &mut [f64],
    ) {
        let n = dag.node_count();
        assert!(lanes <= width, "lanes {lanes} exceed row width {width}");
        assert!(task_dur.len() >= n * width, "task matrix too small");
        assert!(
            comm_dur.len() >= dag.edge_count() * width,
            "comm matrix too small"
        );
        assert_eq!(out.len(), lanes, "output length must equal lanes");
        scratch.finish.clear();
        scratch.finish.resize(n * width, 0.0);
        scratch.ready.clear();
        scratch.ready.resize(width, 0.0);
        let finish = &mut scratch.finish;
        let ready = &mut scratch.ready[..lanes];
        for &v in &self.order {
            match self.prev_on_proc[v] {
                Some(u) => ready.copy_from_slice(&finish[u * width..u * width + lanes]),
                None => ready.fill(0.0),
            }
            for &(u, e) in dag.preds(v) {
                let fu = &finish[u * width..u * width + lanes];
                let cd = &comm_dur[e * width..e * width + lanes];
                for r in 0..lanes {
                    // Branchless max (same value as execute()'s compare —
                    // durations are never NaN).
                    ready[r] = ready[r].max(fu[r] + cd[r]);
                }
            }
            let td = &task_dur[v * width..v * width + lanes];
            let fv = &mut finish[v * width..v * width + lanes];
            for r in 0..lanes {
                fv[r] = ready[r] + td[r];
            }
        }
        // The makespan is the max over the disjunctive sinks (every other
        // finish is dominated by one of them).
        out.fill(0.0);
        for &s in &self.sinks {
            let fs = &finish[s * width..s * width + lanes];
            for r in 0..lanes {
                out[r] = out[r].max(fs[r]);
            }
        }
    }

    /// Replays the eager execution with the given durations.
    ///
    /// `task_time(v)` is the duration of `v` on its assigned machine;
    /// `comm_time(e, u, v)` the communication delay of edge `e = (u, v)`
    /// given the (caller-known) machine pair. Both are called exactly once
    /// per task/edge.
    pub fn execute<FT, FC>(&self, dag: &Dag, mut task_time: FT, mut comm_time: FC) -> ExecResult
    where
        FT: FnMut(NodeId) -> f64,
        FC: FnMut(EdgeId, NodeId, NodeId) -> f64,
    {
        let n = dag.node_count();
        let mut start = vec![0.0f64; n];
        let mut finish = vec![0.0f64; n];
        for &v in &self.order {
            let mut ready = 0.0f64;
            if let Some(u) = self.prev_on_proc[v] {
                ready = finish[u];
            }
            for &(u, e) in dag.preds(v) {
                let arrival = finish[u] + comm_time(e, u, v);
                if arrival > ready {
                    ready = arrival;
                }
            }
            start[v] = ready;
            finish[v] = ready + task_time(v);
        }
        let makespan = finish.iter().copied().fold(0.0, f64::max);
        ExecResult {
            start,
            finish,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn two_machine_diamond_execution() {
        let dag = diamond();
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        // Unit tasks; cross-machine comm = 10 on (0,2) and (2,3).
        let r = plan.execute(
            &dag,
            |_| 1.0,
            |_, u, v| {
                let pu = s.machine_of(u);
                let pv = s.machine_of(v);
                if pu == pv {
                    0.0
                } else {
                    10.0
                }
            },
        );
        assert_eq!(r.start[0], 0.0);
        assert_eq!(r.finish[0], 1.0);
        // Task 2 on machine 1 waits for comm: 1 + 10.
        assert_eq!(r.start[2], 11.0);
        assert_eq!(r.finish[2], 12.0);
        // Task 1 on machine 0 right after 0.
        assert_eq!(r.start[1], 1.0);
        // Task 3 waits for 2's data (12 + 10 = 22) vs 1's finish (2).
        assert_eq!(r.start[3], 22.0);
        assert_eq!(r.makespan, 23.0);
    }

    #[test]
    fn sequential_schedule_sums_durations() {
        let dag = diamond();
        let s = Schedule::new(vec![0; 4], vec![vec![0, 1, 2, 3]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let r = plan.execute(&dag, |v| (v + 1) as f64, |_, _, _| 0.0);
        // Sum of 1+2+3+4 = 10 (co-located ⇒ no comm).
        assert_eq!(r.makespan, 10.0);
        // Starts are cumulative.
        assert_eq!(r.start, vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    fn machine_order_delays_independent_task() {
        // Independent tasks serialized on one machine wait for each other.
        let mut dag = Dag::new(2);
        let _ = &mut dag; // no edges
        let s = Schedule::new(vec![0, 0], vec![vec![1, 0]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let r = plan.execute(&dag, |_| 2.0, |_, _, _| 0.0);
        assert_eq!(r.start[1], 0.0);
        assert_eq!(r.start[0], 2.0);
        assert_eq!(r.makespan, 4.0);
    }

    #[test]
    fn deadlock_rejected() {
        let dag = diamond();
        let s = Schedule::new(vec![0; 4], vec![vec![3, 2, 1, 0]]);
        assert!(EagerPlan::new(&dag, &s).is_err());
    }

    #[test]
    fn disjunctive_sinks_precomputed() {
        let dag = diamond();
        // Machine 0 runs 0,1,3; machine 1 runs 2: only task 3 is a sink
        // (task 2 has a DAG successor, tasks 0/1 have machine successors).
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        assert_eq!(plan.disjunctive_sinks(), &[3]);
        assert_eq!(plan.next_on_proc()[0], Some(1));
        assert_eq!(plan.next_on_proc()[1], Some(3));
        assert_eq!(plan.next_on_proc()[2], None);
        assert_eq!(plan.next_on_proc()[3], None);
        // Two independent tasks on two machines: both are sinks.
        let mut free = Dag::new(2);
        let _ = &mut free;
        let s2 = Schedule::new(vec![0, 1], vec![vec![0], vec![1]]);
        let plan2 = EagerPlan::new(&free, &s2).unwrap();
        assert_eq!(plan2.disjunctive_sinks(), &[0, 1]);
    }

    #[test]
    fn replay_block_matches_scalar_execute_bitwise() {
        let dag = diamond();
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let (n, e) = (dag.node_count(), dag.edge_count());
        let width = 8;
        let lanes = 5;
        // Arbitrary per-lane durations.
        let task_dur: Vec<f64> = (0..n * width)
            .map(|i| 1.0 + ((i * 37) % 11) as f64 * 0.731)
            .collect();
        let comm_dur: Vec<f64> = (0..e * width)
            .map(|i| ((i * 13) % 7) as f64 * 1.113)
            .collect();
        let mut out = vec![0.0; lanes];
        let mut scratch = ReplayScratch::new();
        plan.replay_block(
            &dag,
            &task_dur,
            &comm_dur,
            width,
            lanes,
            &mut scratch,
            &mut out,
        );
        for r in 0..lanes {
            let scalar = plan.execute(
                &dag,
                |v| task_dur[v * width + r],
                |edge, _, _| comm_dur[edge * width + r],
            );
            assert_eq!(out[r], scalar.makespan, "lane {r}");
        }
        // Scratch reuse with different lane counts must not leak state.
        let mut out2 = vec![0.0; 2];
        plan.replay_block(
            &dag,
            &task_dur,
            &comm_dur,
            width,
            2,
            &mut scratch,
            &mut out2,
        );
        assert_eq!(out2[0], out[0]);
        assert_eq!(out2[1], out[1]);
    }

    #[test]
    fn topo_order_respects_both_edge_kinds() {
        let dag = diamond();
        let s = Schedule::new(vec![0, 0, 1, 0], vec![vec![0, 1, 3], vec![2]]);
        let plan = EagerPlan::new(&dag, &s).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in plan.topo_order().iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (u, v, _) in dag.edge_triples() {
            assert!(pos[u] < pos[v]);
        }
        assert!(pos[1] < pos[3]); // same-machine order 1 before 3
    }
}
