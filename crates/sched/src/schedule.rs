//! The eager schedule representation.

use robusched_dag::{Dag, NodeId};

/// An eager schedule: task → machine assignment plus the execution order on
/// every machine. Start dates are *not* stored (§II: eager schedules start
/// every task as soon as possible), so the same schedule replays under any
//  realization of the random durations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    assignment: Vec<usize>,
    proc_order: Vec<Vec<NodeId>>,
}

/// Why a schedule failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task index in `proc_order` is out of the graph's range.
    TaskOutOfRange(NodeId),
    /// A task appears zero or multiple times across the processor orders.
    TaskCountMismatch(NodeId),
    /// A task is listed on a machine other than its assignment.
    WrongMachine(NodeId),
    /// The machine index of an assignment is out of range.
    MachineOutOfRange(usize),
    /// Precedence edges plus same-machine ordering form a cycle: the eager
    /// execution would deadlock.
    Deadlock,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TaskOutOfRange(t) => write!(f, "task {t} out of range"),
            Self::TaskCountMismatch(t) => write!(f, "task {t} not listed exactly once"),
            Self::WrongMachine(t) => {
                write!(f, "task {t} listed on a machine it is not assigned to")
            }
            Self::MachineOutOfRange(m) => write!(f, "machine {m} out of range"),
            Self::Deadlock => write!(f, "schedule order conflicts with precedence (deadlock)"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Builds a schedule from an assignment and per-machine orders.
    ///
    /// Structural coherence (each task listed exactly once, on its assigned
    /// machine) is checked eagerly; deadlock-freedom is checked by
    /// [`Schedule::validate`] / [`crate::eager::EagerPlan::new`] because it
    /// needs the DAG.
    ///
    /// # Panics
    /// Panics on structurally incoherent inputs.
    pub fn new(assignment: Vec<usize>, proc_order: Vec<Vec<NodeId>>) -> Self {
        let n = assignment.len();
        let m = proc_order.len();
        let mut seen = vec![0usize; n];
        for (p, order) in proc_order.iter().enumerate() {
            for &t in order {
                assert!(t < n, "task {t} out of range");
                assert_eq!(assignment[t], p, "task {t} listed on wrong machine");
                seen[t] += 1;
            }
        }
        for (t, &count) in seen.iter().enumerate() {
            assert_eq!(count, 1, "task {t} listed {count} times");
        }
        for &p in &assignment {
            assert!(p < m, "machine {p} out of range");
        }
        Self {
            assignment,
            proc_order,
        }
    }

    /// Builds and fully validates against a DAG (including deadlock check).
    pub fn try_new(
        assignment: Vec<usize>,
        proc_order: Vec<Vec<NodeId>>,
        dag: &Dag,
    ) -> Result<Self, ScheduleError> {
        let n = assignment.len();
        let m = proc_order.len();
        if n != dag.node_count() {
            return Err(ScheduleError::TaskCountMismatch(n.min(dag.node_count())));
        }
        let mut seen = vec![0usize; n];
        for (p, order) in proc_order.iter().enumerate() {
            for &t in order {
                if t >= n {
                    return Err(ScheduleError::TaskOutOfRange(t));
                }
                if assignment[t] != p {
                    return Err(ScheduleError::WrongMachine(t));
                }
                seen[t] += 1;
            }
        }
        if let Some(t) = seen.iter().position(|&c| c != 1) {
            return Err(ScheduleError::TaskCountMismatch(t));
        }
        if let Some(&p) = assignment.iter().find(|&&p| p >= m) {
            return Err(ScheduleError::MachineOutOfRange(p));
        }
        let s = Self {
            assignment,
            proc_order,
        };
        s.validate(dag)?;
        Ok(s)
    }

    /// Checks that the eager execution cannot deadlock: the union of
    /// precedence edges and same-machine successor edges must be acyclic.
    pub fn validate(&self, dag: &Dag) -> Result<(), ScheduleError> {
        // Kahn's algorithm over the disjunctive structure without
        // materializing a graph: in-degrees = DAG preds + (1 if not first on
        // its machine).
        let n = self.assignment.len();
        let mut pos_on_proc = vec![0usize; n];
        for order in &self.proc_order {
            for (k, &t) in order.iter().enumerate() {
                pos_on_proc[t] = k;
            }
        }
        let mut indeg: Vec<usize> = (0..n)
            .map(|v| dag.in_degree(v) + usize::from(pos_on_proc[v] > 0))
            .collect();
        let mut stack: Vec<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut done = 0usize;
        while let Some(u) = stack.pop() {
            done += 1;
            for &(v, _) in dag.succs(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
            // Same-machine successor.
            let p = self.assignment[u];
            let order = &self.proc_order[p];
            if pos_on_proc[u] + 1 < order.len() {
                let next = order[pos_on_proc[u] + 1];
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    stack.push(next);
                }
            }
        }
        if done == n {
            Ok(())
        } else {
            Err(ScheduleError::Deadlock)
        }
    }

    /// Machine of task `t`.
    #[inline]
    pub fn machine_of(&self, t: NodeId) -> usize {
        self.assignment[t]
    }

    /// The task→machine assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Execution order on machine `p`.
    pub fn order_on(&self, p: usize) -> &[NodeId] {
        &self.proc_order[p]
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.proc_order.len()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.assignment.len()
    }

    /// Position of task `t` in its machine's order.
    pub fn position_of(&self, t: NodeId) -> usize {
        self.proc_order[self.assignment[t]]
            .iter()
            .position(|&x| x == t)
            .expect("schedule invariant: every task is listed")
    }

    /// The task executed immediately before `t` on the same machine.
    pub fn predecessor_on_machine(&self, t: NodeId) -> Option<NodeId> {
        let pos = self.position_of(t);
        if pos == 0 {
            None
        } else {
            Some(self.proc_order[self.assignment[t]][pos - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn coherent_schedule_accepted() {
        let dag = diamond();
        let s = Schedule::try_new(vec![0, 0, 1, 1], vec![vec![0, 1], vec![2, 3]], &dag).unwrap();
        assert_eq!(s.machine_of(2), 1);
        assert_eq!(s.order_on(0), &[0, 1]);
        assert_eq!(s.predecessor_on_machine(1), Some(0));
        assert_eq!(s.predecessor_on_machine(2), None);
        assert_eq!(s.position_of(3), 1);
    }

    #[test]
    fn deadlock_detected() {
        // Machine order 3 before 0 on the same machine contradicts 0 →* 3.
        let dag = diamond();
        let err = Schedule::try_new(vec![0, 0, 0, 0], vec![vec![3, 0, 1, 2]], &dag).unwrap_err();
        assert_eq!(err, ScheduleError::Deadlock);
    }

    #[test]
    fn order_against_precedence_on_different_machines_ok() {
        // 1 and 2 are independent: any relative order is fine.
        let dag = diamond();
        assert!(Schedule::try_new(vec![0, 1, 1, 0], vec![vec![0, 3], vec![2, 1]], &dag).is_ok());
    }

    #[test]
    fn wrong_machine_rejected() {
        let dag = diamond();
        let err =
            Schedule::try_new(vec![0, 0, 1, 1], vec![vec![0, 1, 2], vec![3]], &dag).unwrap_err();
        assert_eq!(err, ScheduleError::WrongMachine(2));
    }

    #[test]
    fn missing_task_rejected() {
        let dag = diamond();
        let err = Schedule::try_new(vec![0, 0, 0, 0], vec![vec![0, 1, 2]], &dag).unwrap_err();
        assert!(matches!(err, ScheduleError::TaskCountMismatch(_)));
    }

    #[test]
    #[should_panic(expected = "listed 2 times")]
    fn panic_constructor_checks_duplicates() {
        Schedule::new(vec![0, 0], vec![vec![0, 1, 0]]);
    }
}
