//! Per-machine busy timelines with insertion slots.
//!
//! HEFT and CPOP use the *insertion-based* policy: a task may be placed in
//! an idle gap between two already-scheduled tasks if the gap is long
//! enough. [`ProcTimeline`] maintains the busy intervals of one machine in
//! start order and answers "earliest start ≥ ready of length `dur`".

use robusched_dag::NodeId;

/// Busy intervals of one machine, kept sorted by start time.
#[derive(Debug, Clone, Default)]
pub struct ProcTimeline {
    /// `(start, end, task)` triples sorted by `start`.
    intervals: Vec<(f64, f64, NodeId)>,
}

impl ProcTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest start `≥ ready` of a slot of length `dur`, considering the
    /// gaps between current intervals (insertion policy).
    pub fn earliest_slot(&self, ready: f64, dur: f64) -> f64 {
        let mut candidate = ready;
        for &(s, e, _) in &self.intervals {
            if candidate + dur <= s {
                // Fits in the gap before this interval.
                return candidate;
            }
            if e > candidate {
                candidate = e;
            }
        }
        candidate
    }

    /// Earliest start `≥ ready` appending after the last interval (the
    /// non-insertion policy used by BIL/BMCT commits).
    pub fn earliest_append(&self, ready: f64) -> f64 {
        self.intervals
            .last()
            .map_or(ready, |&(_, e, _)| e.max(ready))
    }

    /// Books `[start, start+dur)` for `task`.
    ///
    /// # Panics
    /// Panics (in debug) if the new interval overlaps an existing one.
    pub fn insert(&mut self, start: f64, dur: f64, task: NodeId) {
        let end = start + dur;
        let pos = self.intervals.partition_point(|&(s, _, _)| s < start);
        debug_assert!(
            pos == 0 || self.intervals[pos - 1].1 <= start + 1e-9,
            "overlap with previous interval"
        );
        debug_assert!(
            pos == self.intervals.len() || end <= self.intervals[pos].0 + 1e-9,
            "overlap with next interval"
        );
        self.intervals.insert(pos, (start, end, task));
    }

    /// Finish time of the last interval (0 when idle).
    pub fn last_finish(&self) -> f64 {
        self.intervals.last().map_or(0.0, |&(_, e, _)| e)
    }

    /// Tasks in execution (start-time) order.
    pub fn task_order(&self) -> Vec<NodeId> {
        self.intervals.iter().map(|&(_, _, t)| t).collect()
    }

    /// Number of booked intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when no interval is booked.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_starts_at_ready() {
        let t = ProcTimeline::new();
        assert_eq!(t.earliest_slot(5.0, 2.0), 5.0);
        assert_eq!(t.earliest_append(5.0), 5.0);
        assert_eq!(t.last_finish(), 0.0);
    }

    #[test]
    fn gap_insertion() {
        let mut t = ProcTimeline::new();
        t.insert(0.0, 2.0, 10);
        t.insert(6.0, 2.0, 11);
        // A 3-long job fits in [2, 6).
        assert_eq!(t.earliest_slot(0.0, 3.0), 2.0);
        // A 5-long job does not; it goes after the end.
        assert_eq!(t.earliest_slot(0.0, 5.0), 8.0);
        // Ready time inside the gap shrinks it.
        assert_eq!(t.earliest_slot(4.0, 3.0), 8.0);
        assert_eq!(t.earliest_slot(4.0, 2.0), 4.0);
    }

    #[test]
    fn append_ignores_gaps() {
        let mut t = ProcTimeline::new();
        t.insert(0.0, 1.0, 0);
        t.insert(10.0, 1.0, 1);
        assert_eq!(t.earliest_append(0.0), 11.0);
        assert_eq!(t.earliest_append(15.0), 15.0);
    }

    #[test]
    fn order_reflects_start_times() {
        let mut t = ProcTimeline::new();
        t.insert(4.0, 1.0, 7);
        t.insert(0.0, 1.0, 3);
        t.insert(2.0, 1.0, 5);
        assert_eq!(t.task_order(), vec![3, 5, 7]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn exact_fit_gap() {
        let mut t = ProcTimeline::new();
        t.insert(0.0, 2.0, 0);
        t.insert(4.0, 2.0, 1);
        assert_eq!(t.earliest_slot(0.0, 2.0), 2.0);
        t.insert(2.0, 2.0, 2);
        assert_eq!(t.task_order(), vec![0, 2, 1]);
    }
}
