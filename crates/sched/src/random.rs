//! Random eager schedules — the paper's sampling of the schedule space.
//!
//! §V: *"random schedules are created by repeating iteratively the
//! following three phases: 1) choose randomly a task among the ready ones,
//! 2) assign it to a randomly selected processor and schedule it eagerly,
//! 3) update the list of ready tasks."*
//!
//! The correlation study rests on these schedules: 10 000 per case (2 000
//! for the 100-task cases), each evaluated for all eight metrics.

use crate::schedule::Schedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusched_dag::Dag;

/// Draws one uniform random eager schedule.
pub fn random_schedule(dag: &Dag, machines: usize, seed: u64) -> Schedule {
    assert!(machines >= 1, "need at least one machine");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dag.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut assignment = vec![0usize; n];
    let mut proc_order: Vec<Vec<usize>> = vec![Vec::new(); machines];
    for _ in 0..n {
        debug_assert!(!ready.is_empty(), "DAG must be acyclic");
        // Phase 1: uniform ready task (swap-remove keeps O(1)).
        let k = rng.gen_range(0..ready.len());
        let t = ready.swap_remove(k);
        // Phase 2: uniform machine, eager (append) placement.
        let p = rng.gen_range(0..machines);
        assignment[t] = p;
        proc_order[p].push(t);
        // Phase 3: update the ready list.
        for &(s, _) in dag.succs(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    Schedule::new(assignment, proc_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusched_dag::generators;

    #[test]
    fn random_schedules_are_valid() {
        let tg = generators::gaussian_elimination(6);
        for seed in 0..20 {
            let s = random_schedule(&tg.dag, 4, seed);
            assert!(
                s.validate(&tg.dag).is_ok(),
                "random schedule seed {seed} invalid"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let tg = generators::cholesky(5);
        let a = random_schedule(&tg.dag, 3, 11);
        let b = random_schedule(&tg.dag, 3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let tg = generators::cholesky(5);
        let a = random_schedule(&tg.dag, 3, 1);
        let b = random_schedule(&tg.dag, 3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uses_multiple_machines_eventually() {
        let tg = generators::independent(50);
        let s = random_schedule(&tg.dag, 5, 3);
        let used = (0..5).filter(|&p| !s.order_on(p).is_empty()).count();
        assert!(used >= 4, "only {used} machines used for 50 tasks");
    }

    #[test]
    fn machine_order_respects_precedence_trivially() {
        // On a chain every schedule must keep topological order per machine.
        let tg = generators::chain(20);
        for seed in 0..10 {
            let s = random_schedule(&tg.dag, 3, seed);
            for p in 0..3 {
                let order = s.order_on(p);
                for w in order.windows(2) {
                    assert!(w[0] < w[1], "chain order violated");
                }
            }
        }
    }
}
