//! The pluggable heuristic surface: every scheduling heuristic behind one
//! object-safe trait, plus a by-name registry.
//!
//! The paper's protocol fixes the heuristic list (HEFT, BIL, Hyb.BMCT);
//! follow-up work — PISA's adversarial harness and the ROADMAP's
//! multi-backend direction — wants heuristics to be first-class, swappable
//! components. [`Heuristic`] is that surface: `robusched-core`'s
//! `StudyBuilder` consumes `&dyn Heuristic`, and [`registry`] /
//! [`heuristic_by_name`] let CLIs and config files select implementations
//! by name without linking against each concrete function.

use crate::bil::bil;
use crate::bmct::hyb_bmct;
use crate::cpop::cpop;
use crate::heft::heft;
use crate::robust::sigma_heft;
use crate::schedule::{Schedule, ScheduleError};
use robusched_platform::Scenario;

/// A scheduling heuristic: a named, reusable `Scenario → Schedule` mapping.
///
/// Implementations must be `Send + Sync` so one instance can serve every
/// worker of a parallel study. All bundled impls are infallible (they
/// construct valid eager schedules by design) but the trait returns
/// `Result` so external heuristics can reject scenarios they cannot handle
/// instead of aborting the process.
pub trait Heuristic: Send + Sync {
    /// Display/registry name (e.g. `"HEFT"`).
    fn name(&self) -> &str;

    /// Produces an eager schedule for the scenario.
    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError>;
}

/// HEFT (Topcuoglu, Hariri & Wu) as a [`Heuristic`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Heft;

impl Heuristic for Heft {
    fn name(&self) -> &str {
        "HEFT"
    }

    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError> {
        Ok(heft(scenario))
    }
}

/// BIL (Oh & Ha) as a [`Heuristic`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Bil;

impl Heuristic for Bil {
    fn name(&self) -> &str {
        "BIL"
    }

    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError> {
        Ok(bil(scenario))
    }
}

/// Hyb.BMCT (Sakellariou & Zhao) as a [`Heuristic`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HybBmct;

impl Heuristic for HybBmct {
    fn name(&self) -> &str {
        "Hyb.BMCT"
    }

    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError> {
        Ok(hyb_bmct(scenario))
    }
}

/// CPOP (Topcuoglu et al.) as a [`Heuristic`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Cpop;

impl Heuristic for Cpop {
    fn name(&self) -> &str {
        "CPOP"
    }

    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError> {
        Ok(cpop(scenario))
    }
}

/// σ-HEFT (the paper's §VIII future-work heuristic) as a [`Heuristic`],
/// parameterized by the risk weight κ.
#[derive(Debug, Clone, Copy)]
pub struct SigmaHeft {
    /// Risk weight κ of the `mean + κ·σ` cost (κ = 0 reduces to
    /// HEFT-on-means).
    pub kappa: f64,
}

impl Default for SigmaHeft {
    fn default() -> Self {
        Self { kappa: 1.0 }
    }
}

impl Heuristic for SigmaHeft {
    fn name(&self) -> &str {
        "σ-HEFT"
    }

    fn schedule(&self, scenario: &Scenario) -> Result<Schedule, ScheduleError> {
        Ok(sigma_heft(scenario, self.kappa))
    }
}

/// All bundled heuristics with their default configurations, in the
/// paper's order (HEFT, BIL, Hyb.BMCT) followed by the extensions
/// (CPOP, σ-HEFT).
pub fn registry() -> Vec<Box<dyn Heuristic>> {
    vec![
        Box::new(Heft),
        Box::new(Bil),
        Box::new(HybBmct),
        Box::new(Cpop),
        Box::new(SigmaHeft::default()),
    ]
}

/// Resolves a heuristic by name, case-insensitively; `"sigma-heft"` is
/// accepted as an ASCII alias of `"σ-HEFT"`. Returns `None` for unknown
/// names.
pub fn heuristic_by_name(name: &str) -> Option<Box<dyn Heuristic>> {
    let lower = name.to_lowercase();
    if lower == "sigma-heft" {
        return Some(Box::new(SigmaHeft::default()));
    }
    registry()
        .into_iter()
        .find(|h| h.name().to_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<String> = registry().iter().map(|h| h.name().to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate heuristic names");
        for n in &names {
            let h = heuristic_by_name(n).unwrap_or_else(|| panic!("{n} not resolvable"));
            assert_eq!(h.name(), n);
        }
    }

    #[test]
    fn lookup_is_case_insensitive_with_ascii_alias() {
        assert_eq!(heuristic_by_name("heft").unwrap().name(), "HEFT");
        assert_eq!(heuristic_by_name("hyb.bmct").unwrap().name(), "Hyb.BMCT");
        assert_eq!(heuristic_by_name("sigma-heft").unwrap().name(), "σ-HEFT");
        assert!(heuristic_by_name("no-such-heuristic").is_none());
    }

    #[test]
    fn trait_schedules_match_free_functions() {
        let s = Scenario::paper_random(12, 3, 1.1, 5);
        assert_eq!(Heft.schedule(&s).unwrap(), heft(&s));
        assert_eq!(Bil.schedule(&s).unwrap(), bil(&s));
        assert_eq!(HybBmct.schedule(&s).unwrap(), hyb_bmct(&s));
        assert_eq!(Cpop.schedule(&s).unwrap(), cpop(&s));
        assert_eq!(
            SigmaHeft { kappa: 0.5 }.schedule(&s).unwrap(),
            sigma_heft(&s, 0.5)
        );
    }

    #[test]
    fn schedules_are_valid_for_their_scenario() {
        let s = Scenario::paper_random(15, 4, 1.1, 9);
        for h in registry() {
            let sched = h.schedule(&s).unwrap();
            assert!(sched.validate(&s.graph.dag).is_ok(), "{}", h.name());
        }
    }
}
