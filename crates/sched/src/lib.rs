//! # robusched-sched
//!
//! Schedules and scheduling heuristics for heterogeneous DAGs.
//!
//! §II of the paper: *"A schedule is the assignment of the tasks to the
//! processors with a start date and an end-date. In this work we consider
//! only eager schedules: each task, once allocated to a processor, starts
//! as soon as possible in the same order given by the schedule."*
//!
//! Accordingly, [`schedule::Schedule`] stores only the assignment and the
//! per-processor task orders; start dates are always *recomputed* by the
//! eager executor ([`eager::EagerPlan`]) from whatever durations are in
//! force — deterministic minima for the heuristics, sampled realizations
//! for Monte-Carlo, random variables for the analytic evaluators.
//!
//! Heuristics (all produce eager schedules):
//! * [`mod@heft`] — HEFT (Topcuoglu, Hariri & Wu): mean-cost upward ranks +
//!   insertion-based earliest finish time;
//! * [`mod@bil`] — BIL (Oh & Ha): basic imaginary levels / makespans;
//! * [`bmct`] — Hyb.BMCT (Sakellariou & Zhao): rank-ordered independent
//!   groups refined by balanced minimum completion time;
//! * [`mod@cpop`] — CPOP (Topcuoglu et al.), an extension beyond the paper's
//!   evaluated set;
//! * [`random`] — the paper's random schedule generator (uniform ready task
//!   → uniform processor → eager placement).
//!
//! [`heuristic`] wraps all of the above behind the object-safe
//! [`Heuristic`] trait with a by-name [`registry`], so studies can swap
//! heuristics without naming concrete functions.

#![deny(missing_docs)]

pub mod bil;
pub mod bmct;
pub mod cpop;
pub mod eager;
pub mod heft;
pub mod heuristic;
pub mod random;
pub mod rank;
pub mod robust;
pub mod schedule;
pub mod timeline;

pub use bil::bil;
pub use bmct::hyb_bmct;
pub use cpop::cpop;
pub use eager::{EagerPlan, ExecResult, ReplayScratch};
pub use heft::heft;
pub use heuristic::{heuristic_by_name, registry, Heuristic};
pub use random::random_schedule;
pub use rank::{downward_ranks, upward_ranks};
pub use robust::sigma_heft;
pub use schedule::{Schedule, ScheduleError};

use robusched_platform::Scenario;

/// Deterministic makespan of a schedule under the minimum durations — the
/// objective every makespan-centric heuristic optimizes.
///
/// Fallible variant of [`det_makespan`] for library consumers that may hold
/// externally supplied (possibly invalid) schedules.
pub fn try_det_makespan(scenario: &Scenario, schedule: &Schedule) -> Result<f64, ScheduleError> {
    let plan = EagerPlan::new(&scenario.graph.dag, schedule)?;
    Ok(plan
        .execute(
            &scenario.graph.dag,
            |v| scenario.det_task_cost(v, schedule.machine_of(v)),
            |e, u, v| scenario.det_comm_cost(e, schedule.machine_of(u), schedule.machine_of(v)),
        )
        .makespan)
}

/// Panicking wrapper around [`try_det_makespan`] (kept for the figure code
/// and tests, where every schedule is constructed valid).
///
/// # Panics
/// Panics if the schedule is invalid for the scenario's graph.
pub fn det_makespan(scenario: &Scenario, schedule: &Schedule) -> f64 {
    try_det_makespan(scenario, schedule).expect("invalid schedule")
}

/// Mean-duration makespan (used by the slack metrics, which the paper
/// computes "by taking the average value of the makespan, the task duration
/// and the communication duration").
///
/// Fallible variant of [`mean_makespan`].
pub fn try_mean_makespan(scenario: &Scenario, schedule: &Schedule) -> Result<f64, ScheduleError> {
    let plan = EagerPlan::new(&scenario.graph.dag, schedule)?;
    Ok(plan
        .execute(
            &scenario.graph.dag,
            |v| scenario.mean_task_cost(v, schedule.machine_of(v)),
            |e, u, v| scenario.mean_comm_cost(e, schedule.machine_of(u), schedule.machine_of(v)),
        )
        .makespan)
}

/// Panicking wrapper around [`try_mean_makespan`].
///
/// # Panics
/// Panics if the schedule is invalid for the scenario's graph.
pub fn mean_makespan(scenario: &Scenario, schedule: &Schedule) -> f64 {
    try_mean_makespan(scenario, schedule).expect("invalid schedule")
}
