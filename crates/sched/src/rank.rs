//! Rank (priority) functions for list heuristics.
//!
//! HEFT, CPOP and Hyb.BMCT all prioritize tasks by *upward rank*: the
//! length of the longest path from the task to an exit, using average
//! (machine-mean) computation costs and average communication costs. CPOP
//! additionally uses the *downward rank* from the entries.

use robusched_dag::NodeId;
use robusched_platform::Scenario;

/// Upward ranks with mean costs: `rank_u(i) = w̄(i) + max_{j ∈ succ(i)}
/// (c̄(i,j) + rank_u(j))`.
pub fn upward_ranks(scenario: &Scenario) -> Vec<f64> {
    let dag = &scenario.graph.dag;
    let order = dag.topo_order().expect("scenario graphs are acyclic");
    let mut rank = vec![0.0f64; dag.node_count()];
    for &v in order.iter().rev() {
        let mut best = 0.0f64;
        for &(s, e) in dag.succs(v) {
            let cand = scenario.avg_det_comm_cost(e) + rank[s];
            if cand > best {
                best = cand;
            }
        }
        rank[v] = scenario.avg_det_task_cost(v) + best;
    }
    rank
}

/// Downward ranks with mean costs: `rank_d(i) = max_{j ∈ pred(i)}
/// (rank_d(j) + w̄(j) + c̄(j,i))`.
pub fn downward_ranks(scenario: &Scenario) -> Vec<f64> {
    let dag = &scenario.graph.dag;
    let order = dag.topo_order().expect("scenario graphs are acyclic");
    let mut rank = vec![0.0f64; dag.node_count()];
    for &v in &order {
        let mut best = 0.0f64;
        for &(u, e) in dag.preds(v) {
            let cand = rank[u] + scenario.avg_det_task_cost(u) + scenario.avg_det_comm_cost(e);
            if cand > best {
                best = cand;
            }
        }
        rank[v] = best;
    }
    rank
}

/// Tasks sorted by decreasing upward rank (ties by node id — the
/// deterministic HEFT ordering).
pub fn tasks_by_decreasing_rank(ranks: &[f64]) -> Vec<NodeId> {
    let mut tasks: Vec<NodeId> = (0..ranks.len()).collect();
    tasks.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]).then_with(|| a.cmp(&b)));
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusched_dag::{Dag, TaskGraph};
    use robusched_platform::{CostMatrix, Platform, Scenario, UncertaintyModel};

    /// Chain 0 → 1 → 2 with unit comm volumes, homogeneous costs.
    fn chain_scenario() -> Scenario {
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        let tg = TaskGraph::new(dag, vec![1.0; 3], vec![1.0; 2], "chain");
        let costs = CostMatrix::from_rows(3, 2, vec![2.0; 6]);
        Scenario::new(
            tg,
            Platform::homogeneous(2, 1.0, 0.0),
            costs,
            UncertaintyModel::none(),
        )
    }

    #[test]
    fn chain_upward_ranks() {
        let s = chain_scenario();
        let r = upward_ranks(&s);
        // rank(2) = 2; rank(1) = 2 + (1·0.5... mean tau over off-diagonal
        // pairs of a homogeneous 2-machine platform is 1) + 2 = 5;
        // rank(0) = 2 + 1 + 5 = 8.
        assert_eq!(r, vec![8.0, 5.0, 2.0]);
    }

    #[test]
    fn chain_downward_ranks() {
        let s = chain_scenario();
        let r = downward_ranks(&s);
        assert_eq!(r, vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn rank_order_monotone_along_paths() {
        let s = Scenario::paper_random(40, 4, 1.1, 77);
        let r = upward_ranks(&s);
        // Upward rank strictly decreases along every edge.
        for (u, v, _) in s.graph.dag.edge_triples() {
            assert!(r[u] > r[v], "rank not decreasing on edge {u}->{v}");
        }
    }

    #[test]
    fn sorted_tasks_are_topologically_compatible() {
        let s = Scenario::paper_random(30, 3, 1.1, 5);
        let r = upward_ranks(&s);
        let order = tasks_by_decreasing_rank(&r);
        let mut pos = vec![0usize; 30];
        for (i, &t) in order.iter().enumerate() {
            pos[t] = i;
        }
        for (u, v, _) in s.graph.dag.edge_triples() {
            assert!(pos[u] < pos[v], "rank order violates precedence");
        }
    }
}
