//! σ-HEFT — the robustness-aware list heuristic of the paper's future work.
//!
//! §VIII: *"Finding an efficient heuristic similar to classic list
//! heuristic based on the standard deviation of every tasks duration rather
//! than their mean or minimal value. This heuristic should be able to
//! produce good and robust schedules."*
//!
//! σ-HEFT is HEFT with every cost replaced by the *risk-adjusted* cost
//! `mean + κ·σ` of the duration random variable:
//!
//! * ranks use machine-averaged risk-adjusted computation costs and
//!   risk-adjusted mean communication costs;
//! * processor selection minimizes the risk-adjusted earliest finish time.
//!
//! `κ = 0` reduces to HEFT-on-means; larger κ penalizes placements whose
//! durations (and hence contributions to the makespan spread) are wide.
//! Under the paper's *constant* UL the spread of a duration is proportional
//! to its mean, so σ-HEFT ≈ HEFT there (the paper's §VII observation that
//! "the makespan is almost an efficient criteria"); with *variable* UL
//! (`Scenario::with_per_task_ul`) the two diverge and σ-HEFT finds
//! genuinely more robust schedules — exactly the regime the future-work
//! remark anticipates.

use crate::schedule::Schedule;
use crate::timeline::ProcTimeline;
use robusched_platform::Scenario;

/// Risk-adjusted cost of task `v` on machine `p`: `mean + κ·σ`.
#[inline]
fn risk_cost(scenario: &Scenario, v: usize, p: usize, kappa: f64) -> f64 {
    scenario.mean_task_cost(v, p) + kappa * scenario.std_task_cost(v, p)
}

/// Machine-averaged risk-adjusted cost (rank ingredient).
fn avg_risk_cost(scenario: &Scenario, v: usize, kappa: f64) -> f64 {
    let m = scenario.machine_count();
    (0..m)
        .map(|p| risk_cost(scenario, v, p, kappa))
        .sum::<f64>()
        / m as f64
}

/// Upward ranks on risk-adjusted costs.
fn risk_ranks(scenario: &Scenario, kappa: f64) -> Vec<f64> {
    let dag = &scenario.graph.dag;
    let order = dag.topo_order().expect("acyclic");
    let mut rank = vec![0.0f64; dag.node_count()];
    for &v in order.iter().rev() {
        let mut best = 0.0f64;
        for &(s, e) in dag.succs(v) {
            // Mean communication cost over distinct pairs plus κ·σ of the
            // same (σ of comm is proportional to its mean under the model).
            let cbar = scenario.avg_det_comm_cost(e);
            let cbar_risk = scenario.uncertainty.mean_weight(cbar)
                + kappa * (scenario.uncertainty.ul - 1.0) * cbar * BETA25_STD;
            let cand = cbar_risk + rank[s];
            if cand > best {
                best = cand;
            }
        }
        rank[v] = avg_risk_cost(scenario, v, kappa) + best;
    }
    rank
}

/// Standard deviation of the unit Beta(2, 5): √(10/(49·8)).
const BETA25_STD: f64 = 0.159_719_141_249_985_4;

/// Runs σ-HEFT with risk weight `κ` (κ = 1 is a good default).
pub fn sigma_heft(scenario: &Scenario, kappa: f64) -> Schedule {
    assert!(kappa >= 0.0, "risk weight must be non-negative");
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let ranks = risk_ranks(scenario, kappa);
    let order = crate::rank::tasks_by_decreasing_rank(&ranks);

    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assignment = vec![usize::MAX; n];
    let mut finish = vec![0.0f64; n];

    for &t in &order {
        let mut best_p = 0usize;
        let mut best_start = f64::INFINITY;
        let mut best_eft = f64::INFINITY;
        for (p, timeline) in timelines.iter().enumerate() {
            let mut ready = 0.0f64;
            for &(u, e) in dag.preds(t) {
                let pu = assignment[u];
                let mean_comm = scenario.mean_comm_cost(e, pu, p);
                let comm_risk = mean_comm + kappa * scenario.std_comm_cost(e, pu, p);
                let arrival = finish[u] + comm_risk;
                if arrival > ready {
                    ready = arrival;
                }
            }
            let dur = risk_cost(scenario, t, p, kappa);
            let start = timeline.earliest_slot(ready, dur);
            if start + dur < best_eft {
                best_eft = start + dur;
                best_start = start;
                best_p = p;
            }
        }
        let dur = risk_cost(scenario, t, best_p, kappa);
        timelines[best_p].insert(best_start, dur, t);
        assignment[t] = best_p;
        finish[t] = best_eft;
    }

    Schedule::new(
        assignment,
        timelines.into_iter().map(|tl| tl.task_order()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_makespan;
    use robusched_randvar::derive_seed;

    #[test]
    fn sigma_heft_valid_and_reasonable() {
        for seed in 0..5 {
            let s = Scenario::paper_random(25, 4, 1.1, seed);
            let sched = sigma_heft(&s, 1.0);
            assert!(sched.validate(&s.graph.dag).is_ok());
            let h = det_makespan(&s, &crate::heft(&s));
            let r = det_makespan(&s, &sched);
            assert!(r < 1.5 * h, "σ-HEFT makespan {r} vs HEFT {h}");
        }
    }

    #[test]
    fn kappa_zero_close_to_heft_quality() {
        // κ = 0 ranks on means instead of minima — not identical to HEFT
        // but the same family; makespans should be within a few percent.
        let s = Scenario::paper_random(30, 4, 1.1, 9);
        let h = det_makespan(&s, &crate::heft(&s));
        let r = det_makespan(&s, &sigma_heft(&s, 0.0));
        assert!((r - h).abs() / h < 0.25, "{r} vs {h}");
    }

    #[test]
    fn variable_ul_rewards_sigma_awareness() {
        // With strongly heterogeneous ULs, σ-HEFT should find schedules at
        // least as robust as HEFT most of the time.
        use robusched_stochastic_shim::*;
        let mut better = 0usize;
        let trials = 6usize;
        for seed in 0..trials as u64 {
            let base = Scenario::paper_random(20, 4, 1.05, 100 + seed);
            let n = base.task_count();
            // Half the tasks are wildly uncertain, half are nearly exact.
            let uls: Vec<f64> = (0..n)
                .map(|v| {
                    if derive_seed(seed, v as u64).is_multiple_of(2) {
                        1.8
                    } else {
                        1.01
                    }
                })
                .collect();
            let s = base.with_per_task_ul(uls);
            let heft_sched = crate::heft(&s);
            let sig_sched = sigma_heft(&s, 2.0);
            let std_h = spelde_std(&s, &heft_sched);
            let std_s = spelde_std(&s, &sig_sched);
            if std_s <= std_h * 1.001 {
                better += 1;
            }
        }
        assert!(
            better * 2 >= trials,
            "σ-HEFT more robust in only {better}/{trials} trials"
        );
    }

    /// Minimal Spelde-style σ estimator local to the test (the real one
    /// lives in robusched-stochastic, which depends on this crate — no
    /// cyclic dev-dependency).
    mod robusched_stochastic_shim {
        use crate::{EagerPlan, Schedule};
        use robusched_numeric::special::{norm_cdf, norm_pdf};
        use robusched_platform::Scenario;
        use robusched_randvar::Dist;

        pub fn spelde_std(s: &Scenario, sched: &Schedule) -> f64 {
            let dag = &s.graph.dag;
            let plan = EagerPlan::new(dag, sched).unwrap();
            let n = dag.node_count();
            let mut mean = vec![0.0f64; n];
            let mut var = vec![0.0f64; n];
            for &v in plan.topo_order() {
                let pv = sched.machine_of(v);
                let mut sm = 0.0;
                let mut sv = 0.0;
                let mut any = false;
                let consider = |m2: f64, v2: f64, sm: &mut f64, sv: &mut f64, any: &mut bool| {
                    if !*any {
                        *sm = m2;
                        *sv = v2;
                        *any = true;
                    } else {
                        // Clark's max.
                        let a2 = *sv + v2;
                        if a2 <= 1e-300 {
                            *sm = sm.max(m2);
                        } else {
                            let a = a2.sqrt();
                            let al = (*sm - m2) / a;
                            let m1 = *sm * norm_cdf(al) + m2 * norm_cdf(-al) + a * norm_pdf(al);
                            let s2 = (*sm * *sm + *sv) * norm_cdf(al)
                                + (m2 * m2 + v2) * norm_cdf(-al)
                                + (*sm + m2) * a * norm_pdf(al);
                            *sm = m1;
                            *sv = (s2 - m1 * m1).max(0.0);
                        }
                    }
                };
                if let Some(u) = plan.prev_on_proc()[v].filter(|&u| !dag.has_edge(u, v)) {
                    consider(mean[u], var[u], &mut sm, &mut sv, &mut any);
                }
                for &(u, e) in dag.preds(v) {
                    let pu = sched.machine_of(u);
                    let (cm, cv) = if pu == pv {
                        (0.0, 0.0)
                    } else {
                        let d = s.comm_dist(e, pu, pv);
                        (d.mean(), d.variance())
                    };
                    consider(mean[u] + cm, var[u] + cv, &mut sm, &mut sv, &mut any);
                }
                let d = s.task_dist(v, pv);
                mean[v] = sm + d.mean();
                var[v] = sv + d.variance();
            }
            let mut acc_m = f64::NEG_INFINITY;
            let mut acc_v = 0.0;
            for v in 0..n {
                if mean[v] > acc_m {
                    acc_m = mean[v];
                    acc_v = var[v];
                }
            }
            acc_v.sqrt()
        }
    }
}
