//! Hyb.BMCT — the hybrid heuristic of Sakellariou & Zhao (HCW 2004).
//!
//! The third heuristic the paper evaluates. Two phases:
//!
//! 1. tasks are ranked by decreasing mean-cost upward rank and split into
//!    *groups of independent tasks*: scanning the ranked list, a task opens
//!    a new group as soon as it depends on a task of the current group —
//!    every group is then an independent-task scheduling subproblem;
//! 2. each group is scheduled with **BMCT** (Balanced Minimum Completion
//!    Time): every task starts on its fastest machine, then tasks migrate
//!    off the most-loaded machine while the group completion time strictly
//!    improves.
//!
//! Groups are committed in order; later groups see the machine availability
//! and data locations produced by earlier ones.

use crate::rank::{tasks_by_decreasing_rank, upward_ranks};
use crate::schedule::Schedule;
use robusched_platform::Scenario;

/// Runs Hyb.BMCT on the deterministic (minimum) costs.
pub fn hyb_bmct(scenario: &Scenario) -> Schedule {
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let ranks = upward_ranks(scenario);
    let ranked = tasks_by_decreasing_rank(&ranks);

    // ---- Phase 1: independent groups along the rank order. ----
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut in_current = vec![false; n];
    for &t in &ranked {
        let depends = dag.preds(t).iter().any(|&(u, _)| in_current[u]);
        if depends {
            for &x in &current {
                in_current[x] = false;
            }
            groups.push(std::mem::take(&mut current));
        }
        in_current[t] = true;
        current.push(t);
    }
    if !current.is_empty() {
        groups.push(current);
    }

    // ---- Phase 2: BMCT per group. ----
    let mut avail = vec![0.0f64; m]; // machine availability after commits
    let mut finish = vec![0.0f64; n];
    let mut assignment = vec![usize::MAX; n];
    let mut proc_order: Vec<Vec<usize>> = vec![Vec::new(); m];

    for group in &groups {
        // Data-ready time of each group task on each machine (preds are all
        // committed in earlier groups).
        let ready = |t: usize, j: usize, assignment: &[usize], finish: &[f64]| -> f64 {
            let mut r = 0.0f64;
            for &(u, e) in dag.preds(t) {
                let arr = finish[u] + scenario.det_comm_cost(e, assignment[u], j);
                if arr > r {
                    r = arr;
                }
            }
            r
        };

        // Initial BMCT assignment: fastest machine per task.
        let mut g_assign: Vec<usize> = group
            .iter()
            .map(|&t| {
                (0..m)
                    .min_by(|&a, &b| {
                        scenario
                            .det_task_cost(t, a)
                            .total_cmp(&scenario.det_task_cost(t, b))
                    })
                    .unwrap()
            })
            .collect();

        // Evaluates the group's per-machine finish times under a candidate
        // assignment; returns (group makespan, balance potential, per-task
        // finishes). The potential is the sum of squared machine finish
        // times: it strictly decreases on every balancing move, so the
        // refinement cannot cycle.
        let evaluate = |g_assign: &[usize]| -> (f64, f64, Vec<f64>) {
            let mut cursor = avail.clone();
            let mut fin = vec![0.0f64; group.len()];
            // Tasks hit each machine in rank order (the group vector is
            // already rank-sorted).
            for (idx, &t) in group.iter().enumerate() {
                let j = g_assign[idx];
                let start = cursor[j].max(ready(t, j, &assignment, &finish));
                let f = start + scenario.det_task_cost(t, j);
                cursor[j] = f;
                fin[idx] = f;
            }
            let ms = cursor.iter().copied().fold(0.0, f64::max);
            let potential = cursor.iter().map(|c| c * c).sum::<f64>();
            (ms, potential, fin)
        };

        // BMCT refinement: migrate tasks off the machine finishing last
        // while the (makespan, balance-potential) pair lexicographically
        // improves — plain makespan-only acceptance stalls on plateaus
        // where several machines tie.
        let (mut cur_ms, mut cur_pot, _) = evaluate(&g_assign);
        let max_iters = 4 * group.len() * m + 8;
        for _ in 0..max_iters {
            // Identify the machine finishing last in this group.
            let (_, _, fin) = evaluate(&g_assign);
            let mut busiest = 0usize;
            let mut busiest_f = f64::NEG_INFINITY;
            for (idx, _) in group.iter().enumerate() {
                if fin[idx] > busiest_f {
                    busiest_f = fin[idx];
                    busiest = g_assign[idx];
                }
            }
            let mut best_move: Option<(usize, usize)> = None;
            let mut best_key = (cur_ms, cur_pot);
            for (idx, _) in group.iter().enumerate() {
                if g_assign[idx] != busiest {
                    continue;
                }
                for q in 0..m {
                    if q == busiest {
                        continue;
                    }
                    let old = g_assign[idx];
                    g_assign[idx] = q;
                    let (ms, pot, _) = evaluate(&g_assign);
                    g_assign[idx] = old;
                    let better = ms + 1e-12 < best_key.0
                        || (ms <= best_key.0 + 1e-12 && pot + 1e-9 < best_key.1);
                    if better {
                        best_key = (ms, pot);
                        best_move = Some((idx, q));
                    }
                }
            }
            match best_move {
                Some((idx, q)) => {
                    g_assign[idx] = q;
                    cur_ms = best_key.0;
                    cur_pot = best_key.1;
                }
                None => break,
            }
        }

        // Commit the group.
        let (_, _, fin) = evaluate(&g_assign);
        for (idx, &t) in group.iter().enumerate() {
            let j = g_assign[idx];
            assignment[t] = j;
            finish[t] = fin[idx];
            proc_order[j].push(t);
            avail[j] = avail[j].max(fin[idx]);
        }
    }

    Schedule::new(assignment, proc_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_makespan;
    use robusched_dag::TaskGraph;
    use robusched_platform::{CostMatrix, Platform, UncertaintyModel};

    #[test]
    fn bmct_valid_on_random_scenarios() {
        for seed in 0..5 {
            let s = Scenario::paper_random(25, 4, 1.1, seed);
            let sched = hyb_bmct(&s);
            assert!(
                sched.validate(&s.graph.dag).is_ok(),
                "invalid schedule at seed {seed}"
            );
            assert!(det_makespan(&s, &sched) > 0.0);
        }
    }

    #[test]
    fn independent_tasks_balance_across_machines() {
        // 8 equal independent tasks on 4 equal machines → 2 per machine.
        let tg = robusched_dag::generators::independent(8);
        let costs = CostMatrix::from_rows(8, 4, vec![1.0; 32]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(4),
            costs,
            UncertaintyModel::none(),
        );
        let sched = hyb_bmct(&s);
        let ms = det_makespan(&s, &sched);
        assert!(
            (ms - 2.0).abs() < 1e-9,
            "expected balanced makespan 2, got {ms}"
        );
    }

    #[test]
    fn groups_respect_dependencies() {
        let s = Scenario::paper_random(30, 4, 1.1, 9);
        let sched = hyb_bmct(&s);
        assert!(sched.validate(&s.graph.dag).is_ok());
    }

    #[test]
    fn bmct_competitive_with_heft() {
        let mut ratio_sum = 0.0;
        let k = 8;
        for seed in 0..k {
            let s = Scenario::paper_random(30, 4, 1.1, 200 + seed);
            let b = det_makespan(&s, &hyb_bmct(&s));
            let h = det_makespan(&s, &crate::heft(&s));
            ratio_sum += b / h;
        }
        let avg = ratio_sum / k as f64;
        assert!(avg < 1.4, "Hyb.BMCT averaged {avg}× HEFT");
    }

    #[test]
    fn single_chain_single_machine_consistency() {
        let tg = robusched_dag::generators::chain(6);
        let costs = CostMatrix::from_rows(6, 2, vec![1.0; 12]);
        let s = Scenario::new(
            tg,
            Platform::homogeneous(2, 1.0, 0.0),
            costs,
            UncertaintyModel::none(),
        );
        let sched = hyb_bmct(&s);
        let ms = det_makespan(&s, &sched);
        // A chain cannot beat the sum of its durations... unless comm-free
        // machine hops, which cost 1 per volume here, make it worse.
        assert!(ms >= 6.0 - 1e-9);
    }

    #[allow(unused_imports)]
    use robusched_dag::Dag;
    use robusched_platform::Scenario;
    #[allow(unused_imports)]
    use TaskGraph as _TG;
}
