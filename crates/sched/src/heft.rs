//! HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu).
//!
//! One of the three makespan-centric heuristics the paper evaluates for
//! robustness. Two phases:
//!
//! 1. *Prioritizing*: tasks sorted by decreasing upward rank computed with
//!    machine-mean computation costs and mean communication costs;
//! 2. *Processor selection*: each task goes to the machine minimizing its
//!    earliest finish time, with the insertion policy (idle gaps between
//!    already-placed tasks may be used).
//!
//! The result is an eager schedule: replaying the per-machine orders with
//! the same deterministic durations reproduces the HEFT start times.

use crate::rank::{tasks_by_decreasing_rank, upward_ranks};
use crate::schedule::Schedule;
use crate::timeline::ProcTimeline;
use robusched_platform::Scenario;

/// Runs HEFT on the deterministic (minimum) costs.
pub fn heft(scenario: &Scenario) -> Schedule {
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let ranks = upward_ranks(scenario);
    let order = tasks_by_decreasing_rank(&ranks);

    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assignment = vec![usize::MAX; n];
    let mut finish = vec![0.0f64; n];

    for &t in &order {
        let mut best_p = 0usize;
        let mut best_start = f64::INFINITY;
        let mut best_eft = f64::INFINITY;
        for (p, timeline) in timelines.iter().enumerate() {
            // Data-ready time on machine p.
            let mut ready = 0.0f64;
            for &(u, e) in dag.preds(t) {
                debug_assert_ne!(assignment[u], usize::MAX, "rank order broke precedence");
                let arrival = finish[u] + scenario.det_comm_cost(e, assignment[u], p);
                if arrival > ready {
                    ready = arrival;
                }
            }
            let dur = scenario.det_task_cost(t, p);
            let start = timeline.earliest_slot(ready, dur);
            let eft = start + dur;
            if eft < best_eft {
                best_eft = eft;
                best_start = start;
                best_p = p;
            }
        }
        let dur = scenario.det_task_cost(t, best_p);
        timelines[best_p].insert(best_start, dur, t);
        assignment[t] = best_p;
        finish[t] = best_eft;
    }

    Schedule::new(
        assignment,
        timelines.into_iter().map(|tl| tl.task_order()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_makespan;
    use robusched_dag::{generators, Dag, TaskGraph};
    use robusched_platform::{CostMatrix, Platform, Scenario, UncertaintyModel};

    #[test]
    fn heft_valid_on_random_scenarios() {
        for seed in 0..5 {
            let s = Scenario::paper_random(30, 4, 1.1, seed);
            let sched = heft(&s);
            assert!(sched.validate(&s.graph.dag).is_ok());
            assert!(det_makespan(&s, &sched) > 0.0);
        }
    }

    #[test]
    fn heft_beats_sequential_when_parallelism_available() {
        let s = Scenario::paper_random(30, 8, 1.01, 3);
        let sched = heft(&s);
        let heft_ms = det_makespan(&s, &sched);
        // Sequential baseline: everything on machine 0 in topo order.
        let topo = s.graph.dag.topo_order().unwrap();
        let seq = Schedule::new(
            vec![0; 30],
            vec![topo, vec![], vec![], vec![], vec![], vec![], vec![], vec![]],
        );
        let seq_ms = det_makespan(&s, &seq);
        assert!(
            heft_ms < seq_ms,
            "HEFT {heft_ms} should beat sequential {seq_ms}"
        );
    }

    #[test]
    fn heft_single_machine_is_rank_order() {
        let s = Scenario::paper_random(10, 1, 1.1, 9);
        let sched = heft(&s);
        assert!(sched.validate(&s.graph.dag).is_ok());
        assert_eq!(sched.order_on(0).len(), 10);
    }

    #[test]
    fn heft_prefers_fast_machine_on_single_task() {
        let dag = Dag::new(1);
        let tg = TaskGraph::new(dag, vec![1.0], vec![], "one");
        let costs = CostMatrix::from_rows(1, 3, vec![5.0, 1.0, 3.0]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(3),
            costs,
            UncertaintyModel::none(),
        );
        let sched = heft(&s);
        assert_eq!(sched.machine_of(0), 1);
    }

    #[test]
    fn heft_exploits_insertion_gap() {
        // Fork-join where one branch is long: the short branch should slot
        // alongside, not serialize.
        let tg = generators::fork_join(2);
        // Tasks 0,1 branches; 2 join. Unit comm volume 0 (fork_join sets 0).
        let costs = CostMatrix::from_rows(
            3,
            2,
            vec![
                10.0, 10.0, // task 0 long everywhere
                1.0, 1.0, // task 1 short
                1.0, 1.0, // join
            ],
        );
        let s = Scenario::new(
            tg,
            Platform::paper_default(2),
            costs,
            UncertaintyModel::none(),
        );
        let sched = heft(&s);
        let ms = det_makespan(&s, &sched);
        // Optimal: run branches in parallel → 10 + 1 = 11.
        assert!(ms <= 11.0 + 1e-9, "makespan {ms}");
    }
}
