//! BIL — Best Imaginary Level scheduling (Oh & Ha, Euro-Par 1996).
//!
//! The second of the paper's three evaluated heuristics. The *basic
//! imaginary level* of task `i` on processor `j` captures the best possible
//! remaining path length if `i` runs on `j`:
//!
//! ```text
//! BIL(i, j) = w(i, j) + max_{k ∈ succ(i)} min( BIL(k, j),
//!                                              min_{q ≠ j} BIL(k, q) + c̄(i, k) )
//! ```
//!
//! At each scheduling step the *basic imaginary makespan*
//! `BIM(i, j) = max(EST(i, j), avail(j)) + BIL(i, j)` is formed for every
//! ready task; the task whose `k`-th smallest BIM (`k = min(r, m)`, `r` =
//! number of ready tasks) is largest gets scheduled first — when fewer
//! processors than ready tasks remain, a task's realistic option is its
//! `k`-th best processor, not its best. Processor selection minimizes the
//! revised `BIM*(i, j) = BIM(i, j) + w(i, j)·max(r/m − 1, 0)`, penalizing
//! long executions when processors are oversubscribed. This follows Oh &
//! Ha's construction; DESIGN.md records it as a faithful reconstruction.

use crate::schedule::Schedule;
use crate::timeline::ProcTimeline;
use robusched_platform::Scenario;

/// Computes the BIL table (`n × m`, row-major).
fn bil_table(scenario: &Scenario) -> Vec<f64> {
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let order = dag.topo_order().expect("acyclic");
    let mut bil = vec![0.0f64; n * m];
    for &v in order.iter().rev() {
        for j in 0..m {
            let mut level = 0.0f64;
            for &(k, e) in dag.succs(v) {
                let cbar = scenario.avg_det_comm_cost(e);
                // Option A: successor stays on j (no transfer).
                let stay = bil[k * m + j];
                // Option B: successor moves to the best other processor.
                let mut go = f64::INFINITY;
                for q in 0..m {
                    if q != j {
                        go = go.min(bil[k * m + q] + cbar);
                    }
                }
                let best = stay.min(go);
                if best > level {
                    level = best;
                }
            }
            bil[v * m + j] = scenario.det_task_cost(v, j) + level;
        }
    }
    bil
}

/// Runs BIL scheduling on the deterministic (minimum) costs.
pub fn bil(scenario: &Scenario) -> Schedule {
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let table = bil_table(scenario);

    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assignment = vec![usize::MAX; n];
    let mut finish = vec![0.0f64; n];
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    // Reusable scratch for per-task BIM rows.
    let mut bims = vec![0.0f64; m];

    while !ready.is_empty() {
        let r = ready.len();
        let k = r.min(m);
        // Selection: the task whose k-th smallest BIM is largest.
        let mut chosen_idx = 0usize;
        let mut chosen_score = f64::NEG_INFINITY;
        for (idx, &t) in ready.iter().enumerate() {
            for (j, slot) in bims.iter_mut().enumerate() {
                let mut est = 0.0f64;
                for &(u, e) in dag.preds(t) {
                    let arrival = finish[u] + scenario.det_comm_cost(e, assignment[u], j);
                    if arrival > est {
                        est = arrival;
                    }
                }
                let start = timelines[j].earliest_append(est);
                *slot = start + table[t * m + j];
            }
            let mut sorted = bims.clone();
            sorted.sort_by(f64::total_cmp);
            let score = sorted[k - 1];
            if score > chosen_score || (score == chosen_score && ready[idx] < ready[chosen_idx]) {
                chosen_score = score;
                chosen_idx = idx;
            }
        }
        let t = ready.swap_remove(chosen_idx);

        // Processor selection: minimize the revised BIM*.
        let oversub = (r as f64 / m as f64 - 1.0).max(0.0);
        let mut best_j = 0usize;
        let mut best_val = f64::INFINITY;
        let mut best_start = 0.0f64;
        for (j, timeline) in timelines.iter().enumerate() {
            let mut est = 0.0f64;
            for &(u, e) in dag.preds(t) {
                let arrival = finish[u] + scenario.det_comm_cost(e, assignment[u], j);
                if arrival > est {
                    est = arrival;
                }
            }
            let start = timeline.earliest_append(est);
            let w = scenario.det_task_cost(t, j);
            let bim_star = start + table[t * m + j] + w * oversub;
            if bim_star < best_val {
                best_val = bim_star;
                best_j = j;
                best_start = start;
            }
        }
        let dur = scenario.det_task_cost(t, best_j);
        timelines[best_j].insert(best_start, dur, t);
        assignment[t] = best_j;
        finish[t] = best_start + dur;
        for &(s, _) in dag.succs(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }

    Schedule::new(
        assignment,
        timelines.into_iter().map(|tl| tl.task_order()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_makespan;
    use robusched_dag::{Dag, TaskGraph};
    use robusched_platform::{CostMatrix, Platform, Scenario, UncertaintyModel};

    #[test]
    fn bil_valid_on_random_scenarios() {
        for seed in 0..5 {
            let s = Scenario::paper_random(25, 4, 1.1, seed);
            let sched = bil(&s);
            assert!(sched.validate(&s.graph.dag).is_ok());
            assert!(det_makespan(&s, &sched) > 0.0);
        }
    }

    #[test]
    fn bil_table_chain_values() {
        // Chain 0 → 1 with homogeneous cost 2 and mean comm 1:
        // BIL(1, j) = 2; BIL(0, j) = 2 + min(2, 2 + 1) = 4.
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1);
        let tg = TaskGraph::new(dag, vec![1.0; 2], vec![1.0], "c");
        let costs = CostMatrix::from_rows(2, 2, vec![2.0; 4]);
        let s = Scenario::new(
            tg,
            Platform::homogeneous(2, 1.0, 0.0),
            costs,
            UncertaintyModel::none(),
        );
        let t = bil_table(&s);
        assert_eq!(t, vec![4.0, 4.0, 2.0, 2.0]);
    }

    #[test]
    fn bil_single_task_picks_fastest() {
        let dag = Dag::new(1);
        let tg = TaskGraph::new(dag, vec![1.0], vec![], "one");
        let costs = CostMatrix::from_rows(1, 3, vec![9.0, 2.0, 4.0]);
        let s = Scenario::new(
            tg,
            Platform::paper_default(3),
            costs,
            UncertaintyModel::none(),
        );
        let sched = bil(&s);
        assert_eq!(sched.machine_of(0), 1);
    }

    #[test]
    fn bil_competitive_with_heft() {
        // The paper reports "excellent and consistent" performance for all
        // three heuristics on these low-unrelatedness platforms.
        let mut worse = 0;
        for seed in 0..8 {
            let s = Scenario::paper_random(30, 4, 1.1, 100 + seed);
            let b = det_makespan(&s, &bil(&s));
            let h = det_makespan(&s, &crate::heft(&s));
            if b > 1.5 * h {
                worse += 1;
            }
        }
        assert!(worse <= 2, "BIL was >1.5× HEFT on {worse}/8 scenarios");
    }
}
