//! CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu).
//!
//! The paper cites CPOP among the makespan heuristics (§I) without
//! evaluating it; we include it as an extension so the robustness study can
//! compare a fourth heuristic. CPOP pins the whole critical path onto the
//! single machine that executes it fastest and schedules the remaining
//! tasks by earliest finish time with priorities `rank_u + rank_d`.

use crate::rank::{downward_ranks, upward_ranks};
use crate::schedule::Schedule;
use crate::timeline::ProcTimeline;
use robusched_platform::Scenario;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue entry ordered by decreasing priority then node id.
#[derive(PartialEq)]
struct Entry {
    priority: f64,
    task: usize,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` gives NaN priorities a deterministic place in the
        // heap order instead of collapsing them to "equal".
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Runs CPOP on the deterministic (minimum) costs.
pub fn cpop(scenario: &Scenario) -> Schedule {
    let dag = &scenario.graph.dag;
    let n = dag.node_count();
    let m = scenario.machine_count();
    let ru = upward_ranks(scenario);
    let rd = downward_ranks(scenario);
    let prio: Vec<f64> = (0..n).map(|v| ru[v] + rd[v]).collect();

    // The critical path: walk from the highest-priority entry node, always
    // following the successor with the highest priority.
    let cp_value = prio.iter().copied().fold(0.0f64, f64::max);
    let eps = 1e-9 * cp_value.max(1.0);
    let mut cp_member = vec![false; n];
    let mut cursor = dag
        .entry_nodes()
        .into_iter()
        .max_by(|&a, &b| prio[a].total_cmp(&prio[b]))
        .expect("graph has at least one entry");
    loop {
        cp_member[cursor] = true;
        let next = dag
            .succs(cursor)
            .iter()
            .map(|&(s, _)| s)
            .max_by(|&a, &b| prio[a].total_cmp(&prio[b]));
        match next {
            Some(s) if (prio[s] - cp_value).abs() <= eps || prio[s] >= cp_value - eps => {
                cursor = s;
            }
            Some(s) => {
                // Keep walking the heaviest successor even if numerically
                // below cp_value (defensive; classic CPOP assumes equality).
                cursor = s;
            }
            None => break,
        }
    }

    // The critical-path machine minimizes the total CP execution time.
    let cp_machine = (0..m)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n)
                .filter(|&v| cp_member[v])
                .map(|v| scenario.det_task_cost(v, a))
                .sum();
            let cb: f64 = (0..n)
                .filter(|&v| cp_member[v])
                .map(|v| scenario.det_task_cost(v, b))
                .sum();
            ca.total_cmp(&cb)
        })
        .expect("at least one machine");

    // Priority-driven list scheduling.
    let mut timelines: Vec<ProcTimeline> = vec![ProcTimeline::new(); m];
    let mut assignment = vec![usize::MAX; n];
    let mut finish = vec![0.0f64; n];
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
    let mut heap: BinaryHeap<Entry> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(|v| Entry {
            priority: prio[v],
            task: v,
        })
        .collect();

    while let Some(Entry { task: t, .. }) = heap.pop() {
        let candidates: Vec<usize> = if cp_member[t] {
            vec![cp_machine]
        } else {
            (0..m).collect()
        };
        let mut best_p = candidates[0];
        let mut best_start = f64::INFINITY;
        let mut best_eft = f64::INFINITY;
        for &p in &candidates {
            let mut ready = 0.0f64;
            for &(u, e) in dag.preds(t) {
                let arrival = finish[u] + scenario.det_comm_cost(e, assignment[u], p);
                if arrival > ready {
                    ready = arrival;
                }
            }
            let dur = scenario.det_task_cost(t, p);
            let start = timelines[p].earliest_slot(ready, dur);
            if start + dur < best_eft {
                best_eft = start + dur;
                best_start = start;
                best_p = p;
            }
        }
        let dur = scenario.det_task_cost(t, best_p);
        timelines[best_p].insert(best_start, dur, t);
        assignment[t] = best_p;
        finish[t] = best_eft;
        for &(s, _) in dag.succs(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Entry {
                    priority: prio[s],
                    task: s,
                });
            }
        }
    }

    Schedule::new(
        assignment,
        timelines.into_iter().map(|tl| tl.task_order()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det_makespan;
    use robusched_platform::Scenario;

    #[test]
    fn cpop_valid_on_random_scenarios() {
        for seed in 0..5 {
            let s = Scenario::paper_random(25, 4, 1.1, seed);
            let sched = cpop(&s);
            assert!(sched.validate(&s.graph.dag).is_ok());
            assert!(det_makespan(&s, &sched) > 0.0);
        }
    }

    #[test]
    fn critical_path_tasks_share_a_machine() {
        let s = Scenario::paper_random(30, 4, 1.01, 11);
        let sched = cpop(&s);
        // Recompute CP membership the same way and check the assignment.
        let ru = upward_ranks(&s);
        let rd = downward_ranks(&s);
        let n = s.task_count();
        let prio: Vec<f64> = (0..n).map(|v| ru[v] + rd[v]).collect();
        let entry = s
            .graph
            .dag
            .entry_nodes()
            .into_iter()
            .max_by(|&a, &b| prio[a].total_cmp(&prio[b]))
            .unwrap();
        let cp_machine = sched.machine_of(entry);
        let mut cursor = entry;
        loop {
            assert_eq!(
                sched.machine_of(cursor),
                cp_machine,
                "CP task {cursor} strayed"
            );
            match s
                .graph
                .dag
                .succs(cursor)
                .iter()
                .map(|&(v, _)| v)
                .max_by(|&a, &b| prio[a].total_cmp(&prio[b]))
            {
                Some(nxt) => cursor = nxt,
                None => break,
            }
        }
    }

    #[test]
    fn cpop_reasonable_vs_heft() {
        // CPOP need not beat HEFT but should be within a small factor.
        let s = Scenario::paper_random(40, 4, 1.1, 21);
        let h = det_makespan(&s, &crate::heft(&s));
        let c = det_makespan(&s, &cpop(&s));
        assert!(c < 3.0 * h, "CPOP {c} vs HEFT {h}");
    }
}
