//! The uncertainty model: deterministic weight → random variable.
//!
//! §II of the paper: every duration has a *minimum value* and an
//! *uncertainty level* `UL ≥ 1`; the random variable lives on
//! `[min, UL·min]` — "the larger the task duration, the larger the possible
//! values of different execution times". §V fixes the shape to Beta(2, 5)
//! (right-skewed, interior mode). [`UncertaintyKind`] also offers uniform
//! and triangular substitutions for the paper's future-work sensitivity
//! question ("different probability densities"), and `None` for the
//! deterministic limit.

use rand::RngCore;
use robusched_randvar::{Dirac, Dist, ScaledBeta, Triangular, Uniform};

/// The family of per-weight distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncertaintyKind {
    /// The paper's Beta(2, 5) substitution.
    Beta25,
    /// Uniform on `[w, UL·w]`.
    Uniform,
    /// Right-skewed triangular (mode at 20% of the span).
    Triangular,
    /// No uncertainty: every weight stays deterministic.
    None,
}

/// Uncertainty level + distribution family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintyModel {
    /// `UL ≥ 1`; the maximum duration is `UL × min`.
    pub ul: f64,
    /// Distribution family applied to every weight.
    pub kind: UncertaintyKind,
}

impl UncertaintyModel {
    /// The paper's model: Beta(2, 5) at the given uncertainty level.
    pub fn paper(ul: f64) -> Self {
        assert!(ul >= 1.0, "uncertainty level must be ≥ 1, got {ul}");
        Self {
            ul,
            kind: UncertaintyKind::Beta25,
        }
    }

    /// The deterministic limit.
    pub fn none() -> Self {
        Self {
            ul: 1.0,
            kind: UncertaintyKind::None,
        }
    }

    /// The random variable of a weight with minimum value `w`.
    ///
    /// Zero weights (co-located communications) and `UL = 1` collapse to a
    /// point mass regardless of the family.
    pub fn weight_dist(&self, w: f64) -> WeightDist {
        self.weight_dist_with_ul(w, self.ul)
    }

    /// Like [`UncertaintyModel::weight_dist`] with an explicit per-weight
    /// uncertainty level — the paper's future-work "variable UL" extension
    /// ("which will break the equivalence between task duration mean and
    /// standard deviation").
    pub fn weight_dist_with_ul(&self, w: f64, ul: f64) -> WeightDist {
        assert!(w >= 0.0 && w.is_finite(), "weight must be non-negative");
        assert!(ul >= 1.0, "uncertainty level must be ≥ 1, got {ul}");
        let hi = ul * w;
        if w == 0.0 || hi == w || self.kind == UncertaintyKind::None {
            return WeightDist::Point(Dirac::new(w));
        }
        match self.kind {
            UncertaintyKind::Beta25 => WeightDist::Beta(ScaledBeta::new(2.0, 5.0, w, hi)),
            UncertaintyKind::Uniform => WeightDist::Uniform(Uniform::new(w, hi)),
            UncertaintyKind::Triangular => {
                WeightDist::Triangular(Triangular::new(w, w + 0.2 * (hi - w), hi))
            }
            UncertaintyKind::None => unreachable!("handled above"),
        }
    }

    /// The *standard* (unit-support) shape of this family, if any — the
    /// base of the shared quantile table used by the Monte-Carlo engine
    /// (every weight is `w + (UL−1)·w · Q_base(U)`).
    pub fn base_shape(&self) -> Option<WeightDist> {
        match self.kind {
            UncertaintyKind::Beta25 => Some(WeightDist::Beta(ScaledBeta::new(2.0, 5.0, 0.0, 1.0))),
            UncertaintyKind::Uniform => Some(WeightDist::Uniform(Uniform::new(0.0, 1.0))),
            UncertaintyKind::Triangular => {
                Some(WeightDist::Triangular(Triangular::new(0.0, 0.2, 1.0)))
            }
            UncertaintyKind::None => None,
        }
    }

    /// Mean of the weight RV without materializing it: `w + (UL−1)·w·μ_base`.
    pub fn mean_weight(&self, w: f64) -> f64 {
        self.mean_weight_with_ul(w, self.ul)
    }

    /// [`UncertaintyModel::mean_weight`] with an explicit uncertainty level.
    pub fn mean_weight_with_ul(&self, w: f64, ul: f64) -> f64 {
        match self.kind {
            UncertaintyKind::None => w,
            UncertaintyKind::Beta25 => w + (ul - 1.0) * w * (2.0 / 7.0),
            UncertaintyKind::Uniform => w + (ul - 1.0) * w * 0.5,
            UncertaintyKind::Triangular => w + (ul - 1.0) * w * 0.4,
        }
    }

    /// Standard deviation of the weight RV without materializing it:
    /// `(UL−1)·w·σ_base`. Heuristics query σ per (task, machine) candidate
    /// on their hot path, where building a distribution just to read a
    /// closed-form moment dominated the cost.
    pub fn std_weight(&self, w: f64) -> f64 {
        self.std_weight_with_ul(w, self.ul)
    }

    /// [`UncertaintyModel::std_weight`] with an explicit uncertainty level.
    pub fn std_weight_with_ul(&self, w: f64, ul: f64) -> f64 {
        let base_std = match self.kind {
            UncertaintyKind::None => return 0.0,
            // √Var of the unit-support base shapes: Beta(2, 5) has
            // αβ/((α+β)²(α+β+1)) = 10/392; U(0, 1) has 1/12;
            // Tri(0, 0.2, 1) has (a²+b²+c²−ab−ac−bc)/18 = 0.84/18.
            UncertaintyKind::Beta25 => (10.0f64 / 392.0).sqrt(),
            UncertaintyKind::Uniform => (1.0f64 / 12.0).sqrt(),
            UncertaintyKind::Triangular => (0.84f64 / 18.0).sqrt(),
        };
        (ul - 1.0) * w * base_std
    }
}

/// A weight's distribution, statically dispatched across the small closed
/// family (no boxing on the hot paths).
#[derive(Debug, Clone, Copy)]
pub enum WeightDist {
    /// Scaled Beta(2, 5) — the paper's choice.
    Beta(ScaledBeta),
    /// Scaled uniform.
    Uniform(Uniform),
    /// Scaled right-skewed triangular.
    Triangular(Triangular),
    /// Deterministic.
    Point(Dirac),
}

macro_rules! delegate {
    ($self:ident, $method:ident $(, $arg:expr)*) => {
        match $self {
            WeightDist::Beta(d) => d.$method($($arg),*),
            WeightDist::Uniform(d) => d.$method($($arg),*),
            WeightDist::Triangular(d) => d.$method($($arg),*),
            WeightDist::Point(d) => d.$method($($arg),*),
        }
    };
}

impl Dist for WeightDist {
    fn pdf(&self, x: f64) -> f64 {
        delegate!(self, pdf, x)
    }
    fn cdf(&self, x: f64) -> f64 {
        delegate!(self, cdf, x)
    }
    fn mean(&self) -> f64 {
        delegate!(self, mean)
    }
    fn variance(&self) -> f64 {
        delegate!(self, variance)
    }
    fn support(&self) -> (f64, f64) {
        delegate!(self, support)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        delegate!(self, sample, rng)
    }
    fn quantile(&self, p: f64) -> f64 {
        delegate!(self, quantile, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_model_support() {
        let u = UncertaintyModel::paper(1.1);
        let d = u.weight_dist(20.0);
        assert_eq!(d.support(), (20.0, 22.0));
        match d {
            WeightDist::Beta(_) => {}
            other => panic!("expected beta, got {other:?}"),
        }
    }

    #[test]
    fn zero_weight_is_point() {
        let u = UncertaintyModel::paper(1.5);
        let d = u.weight_dist(0.0);
        assert_eq!(d.support(), (0.0, 0.0));
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn ul_one_is_deterministic() {
        let u = UncertaintyModel::paper(1.0);
        let d = u.weight_dist(7.0);
        assert_eq!(d.support(), (7.0, 7.0));
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn none_kind_always_point() {
        let u = UncertaintyModel::none();
        let d = u.weight_dist(5.0);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn mean_weight_matches_distribution() {
        for kind in [
            UncertaintyKind::Beta25,
            UncertaintyKind::Uniform,
            UncertaintyKind::Triangular,
        ] {
            let u = UncertaintyModel { ul: 1.4, kind };
            let d = u.weight_dist(10.0);
            assert!(
                (u.mean_weight(10.0) - d.mean()).abs() < 1e-9,
                "{kind:?}: {} vs {}",
                u.mean_weight(10.0),
                d.mean()
            );
        }
    }

    #[test]
    fn std_weight_matches_distribution() {
        for kind in [
            UncertaintyKind::Beta25,
            UncertaintyKind::Uniform,
            UncertaintyKind::Triangular,
            UncertaintyKind::None,
        ] {
            let u = UncertaintyModel { ul: 1.4, kind };
            let d = u.weight_dist(10.0);
            assert!(
                (u.std_weight(10.0) - d.std_dev()).abs() < 1e-9,
                "{kind:?}: {} vs {}",
                u.std_weight(10.0),
                d.std_dev()
            );
        }
        // Degenerate weights and UL = 1 give zero spread.
        let u = UncertaintyModel::paper(1.5);
        assert_eq!(u.std_weight(0.0), 0.0);
        assert_eq!(u.std_weight_with_ul(7.0, 1.0), 0.0);
    }

    #[test]
    fn base_shape_unit_support() {
        let u = UncertaintyModel::paper(1.1);
        let base = u.base_shape().unwrap();
        assert_eq!(base.support(), (0.0, 1.0));
        assert!(UncertaintyModel::none().base_shape().is_none());
    }

    #[test]
    fn sampling_stays_in_support() {
        let u = UncertaintyModel {
            ul: 2.0,
            kind: UncertaintyKind::Triangular,
        };
        let d = u.weight_dist(3.0);
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((3.0..=6.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn rejects_ul_below_one() {
        UncertaintyModel::paper(0.5);
    }
}
