//! Machine set and network model.
//!
//! `τ[(p, q)]` is the time to ship one data element from machine `p` to
//! machine `q`; `L[(p, q)]` the latency of that link. Diagonals are zero by
//! construction (§II: "communications … between two tasks mapped on the
//! same processor … \[are\] negligible"). The paper's experiments set the
//! latency to zero outright ("the latency was not considered because its
//! influence was negligible"), which [`Platform::paper_default`] mirrors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of `m` machines with per-pair communication parameters.
#[derive(Debug, Clone)]
pub struct Platform {
    m: usize,
    /// Row-major `m × m` per-element transfer times, zero diagonal.
    tau: Vec<f64>,
    /// Row-major `m × m` latencies, zero diagonal.
    lat: Vec<f64>,
}

impl Platform {
    /// Builds a platform from explicit matrices (row-major, `m × m`).
    ///
    /// # Panics
    /// Panics on size mismatch, negative/non-finite entries, or nonzero
    /// diagonals.
    pub fn from_matrices(m: usize, tau: Vec<f64>, lat: Vec<f64>) -> Self {
        assert!(m >= 1, "need at least one machine");
        assert_eq!(tau.len(), m * m, "τ must be m×m");
        assert_eq!(lat.len(), m * m, "L must be m×m");
        for p in 0..m {
            for q in 0..m {
                let t = tau[p * m + q];
                let l = lat[p * m + q];
                assert!(t.is_finite() && t >= 0.0, "τ[{p},{q}] invalid: {t}");
                assert!(l.is_finite() && l >= 0.0, "L[{p},{q}] invalid: {l}");
            }
            assert_eq!(tau[p * m + p], 0.0, "τ diagonal must be zero");
            assert_eq!(lat[p * m + p], 0.0, "L diagonal must be zero");
        }
        Self { m, tau, lat }
    }

    /// Homogeneous network: every off-diagonal pair has the same `τ`/`L`.
    pub fn homogeneous(m: usize, tau: f64, lat: f64) -> Self {
        let mut t = vec![tau; m * m];
        let mut l = vec![lat; m * m];
        for p in 0..m {
            t[p * m + p] = 0.0;
            l[p * m + p] = 0.0;
        }
        Self::from_matrices(m, t, l)
    }

    /// The paper's experimental network: unit per-element transfer time on
    /// every distinct pair, zero latency.
    pub fn paper_default(m: usize) -> Self {
        Self::homogeneous(m, 1.0, 0.0)
    }

    /// A heterogeneous network: `τ[(p,q)]` drawn uniformly from
    /// `[tau_lo, tau_hi]` per ordered pair, zero latency (the paper's model
    /// allows asymmetric links; so do we).
    pub fn heterogeneous(m: usize, tau_lo: f64, tau_hi: f64, seed: u64) -> Self {
        assert!(0.0 <= tau_lo && tau_lo <= tau_hi, "bad τ range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tau = vec![0.0; m * m];
        for p in 0..m {
            for q in 0..m {
                if p != q {
                    tau[p * m + q] = rng.gen_range(tau_lo..=tau_hi);
                }
            }
        }
        Self::from_matrices(m, tau, vec![0.0; m * m])
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.m
    }

    /// Per-element transfer time `τ(p, q)`.
    #[inline]
    pub fn tau(&self, p: usize, q: usize) -> f64 {
        self.tau[p * self.m + q]
    }

    /// Latency `L(p, q)`.
    #[inline]
    pub fn latency(&self, p: usize, q: usize) -> f64 {
        self.lat[p * self.m + q]
    }

    /// Deterministic (minimum) communication time of `volume` elements from
    /// `p` to `q`: `L(p,q) + volume·τ(p,q)`; zero when `p == q`.
    #[inline]
    pub fn comm_time(&self, volume: f64, p: usize, q: usize) -> f64 {
        if p == q {
            0.0
        } else {
            self.latency(p, q) + volume * self.tau(p, q)
        }
    }

    /// Mean off-diagonal `τ` (used by rank functions that need an "average"
    /// communication cost, as in HEFT).
    pub fn mean_tau(&self) -> f64 {
        if self.m <= 1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for p in 0..self.m {
            for q in 0..self.m {
                if p != q {
                    acc += self.tau(p, q);
                }
            }
        }
        acc / (self.m * (self.m - 1)) as f64
    }

    /// Mean off-diagonal latency.
    pub fn mean_latency(&self) -> f64 {
        if self.m <= 1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for p in 0..self.m {
            for q in 0..self.m {
                if p != q {
                    acc += self.latency(p, q);
                }
            }
        }
        acc / (self.m * (self.m - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_platform() {
        let p = Platform::homogeneous(3, 2.0, 0.5);
        assert_eq!(p.machine_count(), 3);
        assert_eq!(p.tau(0, 1), 2.0);
        assert_eq!(p.tau(1, 1), 0.0);
        assert_eq!(p.latency(2, 0), 0.5);
        assert_eq!(p.latency(2, 2), 0.0);
    }

    #[test]
    fn comm_time_colocated_is_free() {
        let p = Platform::paper_default(4);
        assert_eq!(p.comm_time(100.0, 1, 1), 0.0);
        assert_eq!(p.comm_time(5.0, 0, 2), 5.0);
    }

    #[test]
    fn heterogeneous_in_range_and_deterministic() {
        let a = Platform::heterogeneous(5, 0.5, 1.5, 9);
        let b = Platform::heterogeneous(5, 0.5, 1.5, 9);
        for p in 0..5 {
            for q in 0..5 {
                assert_eq!(a.tau(p, q), b.tau(p, q));
                if p != q {
                    assert!((0.5..=1.5).contains(&a.tau(p, q)));
                } else {
                    assert_eq!(a.tau(p, q), 0.0);
                }
            }
        }
    }

    #[test]
    fn mean_tau_excludes_diagonal() {
        let p = Platform::homogeneous(3, 2.0, 0.0);
        assert!((p.mean_tau() - 2.0).abs() < 1e-12);
        let single = Platform::paper_default(1);
        assert_eq!(single.mean_tau(), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal must be zero")]
    fn nonzero_diagonal_rejected() {
        Platform::from_matrices(2, vec![1.0, 1.0, 1.0, 0.0], vec![0.0; 4]);
    }
}
