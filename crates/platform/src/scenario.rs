//! A fully specified scheduling problem instance.
//!
//! A [`Scenario`] bundles the task graph, the platform, the unrelated cost
//! matrix and the uncertainty model — everything a scheduler or a makespan
//! evaluator needs. The two builders mirror the paper's case families:
//! [`Scenario::paper_random`] (layered random DAG, CV-gamma costs) and
//! [`Scenario::paper_real_app`] (Cholesky / Gaussian elimination with the
//! `[minVal, 2·minVal]` cost scheme).

use crate::costs::CostMatrix;
use crate::machines::Platform;
use crate::uncertainty::{UncertaintyModel, WeightDist};
use robusched_dag::generators::{layered_random, LayeredRandomConfig};
use robusched_dag::{EdgeId, NodeId, TaskGraph};
use robusched_randvar::derive_seed;

/// Platform calibration for trace-backed scenarios: how many machines the
/// reference platform has and how heterogeneous their speeds are. The
/// default is the `ext-traces` study's fixed platform (8 machines, speed
/// CV 0.5); callers replaying a trace recorded on a known cluster override
/// it to match (e.g. a 32-node homogeneous cluster →
/// `TraceCalibration { machines: 32, speed_cov: 0.0 }`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCalibration {
    /// Machines of the reference platform.
    pub machines: usize,
    /// Coefficient of variation of the machine speeds (0 = homogeneous).
    pub speed_cov: f64,
}

impl Default for TraceCalibration {
    fn default() -> Self {
        Self {
            machines: 8,
            speed_cov: 0.5,
        }
    }
}

/// A complete problem instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The application.
    pub graph: TaskGraph,
    /// The machines and network.
    pub platform: Platform,
    /// Minimum task durations (unrelated model).
    pub costs: CostMatrix,
    /// How deterministic weights become random variables.
    pub uncertainty: UncertaintyModel,
    /// Optional per-task uncertainty levels overriding `uncertainty.ul` —
    /// the paper's future-work "variable UL" extension. Communication
    /// weights keep the global level.
    pub per_task_ul: Option<Vec<f64>>,
}

impl Scenario {
    /// Assembles a scenario, validating dimensions.
    ///
    /// # Panics
    /// Panics if the cost matrix does not match the graph/platform sizes.
    pub fn new(
        graph: TaskGraph,
        platform: Platform,
        costs: CostMatrix,
        uncertainty: UncertaintyModel,
    ) -> Self {
        assert_eq!(
            costs.task_count(),
            graph.task_count(),
            "cost matrix rows must match task count"
        );
        assert_eq!(
            costs.machine_count(),
            platform.machine_count(),
            "cost matrix columns must match machine count"
        );
        Self {
            graph,
            platform,
            costs,
            uncertainty,
            per_task_ul: None,
        }
    }

    /// Installs per-task uncertainty levels (variable-UL extension).
    ///
    /// # Panics
    /// Panics unless one level `≥ 1` is given per task.
    pub fn with_per_task_ul(mut self, uls: Vec<f64>) -> Self {
        assert_eq!(uls.len(), self.task_count(), "one UL per task required");
        assert!(uls.iter().all(|u| *u >= 1.0), "ULs must be ≥ 1");
        self.per_task_ul = Some(uls);
        self
    }

    /// The uncertainty level in force for task `i`.
    #[inline]
    pub fn task_ul(&self, i: NodeId) -> f64 {
        match &self.per_task_ul {
            Some(uls) => uls[i],
            None => self.uncertainty.ul,
        }
    }

    /// The paper's random-graph case: layered random DAG (`n` tasks,
    /// `μ_task = 20`, `V_task = 0.5`, `CCR = 0.1`), CV-gamma cost matrix
    /// (`V_mach = 0.5`), unit-τ zero-latency network, Beta(2, 5)
    /// uncertainty at level `ul`.
    pub fn paper_random(n: usize, m: usize, ul: f64, seed: u64) -> Self {
        let cfg = LayeredRandomConfig {
            n,
            ..Default::default()
        };
        let graph = layered_random(&cfg, derive_seed(seed, 1));
        let costs = CostMatrix::cv_method(&graph.task_work, m, 0.5, derive_seed(seed, 2));
        let platform = Platform::paper_default(m);
        Self::new(graph, platform, costs, UncertaintyModel::paper(ul))
    }

    /// The paper's real-application case: a given task graph (Cholesky or
    /// Gaussian elimination), per-task random `minVal` with machine costs
    /// uniform in `[minVal, 2·minVal]`, unit-τ zero-latency network,
    /// Beta(2, 5) uncertainty at level `ul`.
    pub fn paper_real_app(graph: TaskGraph, m: usize, ul: f64, seed: u64) -> Self {
        // The paper draws minVal "randomly"; we scale the structural work by
        // a uniform factor so large tasks remain large (documented in
        // DESIGN.md). The [1, 3] range keeps durations within the same
        // order as the communication volumes, as §V requires ("values with
        // the same order for the processor and the communication times").
        let costs =
            CostMatrix::uniform_range_method(&graph.task_work, m, 1.0, 3.0, derive_seed(seed, 2));
        let platform = Platform::paper_default(m);
        Self::new(graph, platform, costs, UncertaintyModel::paper(ul))
    }

    /// The structured-application (`ext-apps`) case: a given task graph
    /// (one of the [`robusched_dag::apps::AppClass`] shapes), a
    /// *consistent-heterogeneity* cost matrix built from per-machine speed
    /// vectors with coefficient of variation `speed_cov` (plus 10 % mean-1
    /// unrelatedness noise — see [`CostMatrix::related_method`] and
    /// DESIGN.md), unit-τ zero-latency network, Beta(2, 5) uncertainty at
    /// level `ul`. Unlike [`Scenario::paper_real_app`], a machine that is
    /// fast for one kernel is fast for all of them, the regime real
    /// dense-linear-algebra platforms live in.
    pub fn structured_app(graph: TaskGraph, m: usize, speed_cov: f64, ul: f64, seed: u64) -> Self {
        Self::structured_app_unrelated(graph, m, speed_cov, 0.1, ul, seed)
    }

    /// [`Scenario::structured_app`] with the unrelatedness noise exposed as
    /// a knob instead of the fixed 10 % — the perturbation layer of the
    /// adversarial search nudges it. `unrelatedness = 0` gives a perfectly
    /// consistent platform (every machine's cost is `work / speed`
    /// exactly); larger values blur the speed ordering per task. The seed
    /// contract is unchanged: `derive_seed(seed, 3)` draws the speeds,
    /// `derive_seed(seed, 4)` the noise, so `unrelatedness = 0.1`
    /// reproduces [`Scenario::structured_app`] bit for bit.
    pub fn structured_app_unrelated(
        graph: TaskGraph,
        m: usize,
        speed_cov: f64,
        unrelatedness: f64,
        ul: f64,
        seed: u64,
    ) -> Self {
        let speeds = crate::costs::machine_speeds(m, speed_cov, derive_seed(seed, 3));
        let costs = CostMatrix::related_method(
            &graph.task_work,
            &speeds,
            unrelatedness,
            derive_seed(seed, 4),
        );
        let platform = Platform::paper_default(m);
        Self::new(graph, platform, costs, UncertaintyModel::paper(ul))
    }

    /// The real-workflow-trace (`ext-traces`) case: a parsed trace
    /// ([`robusched_dag::parsers::TraceDag`] from a DAX / WfCommons / DOT
    /// file), converted to a [`TaskGraph`] under the trace layer's
    /// reference-platform unit convention (mean work normalized to the
    /// paper's `μ_task = 20`, the trace's realized CCR preserved), then
    /// costed exactly like [`Scenario::structured_app`]: consistent
    /// heterogeneity with speed CV `speed_cov`, 10 % unrelatedness noise,
    /// unit-τ zero-latency network, Beta(2, 5) uncertainty at level `ul`.
    /// Seed-deterministic: the same trace + `(m, speed_cov, ul, seed)`
    /// reproduces the scenario bit for bit.
    pub fn from_trace(
        trace: &robusched_dag::parsers::TraceDag,
        m: usize,
        speed_cov: f64,
        ul: f64,
        seed: u64,
    ) -> Self {
        Self::structured_app(trace.to_task_graph(), m, speed_cov, ul, seed)
    }

    /// [`Scenario::from_trace`] with the platform described by a
    /// [`TraceCalibration`] — the override point for callers replaying a
    /// trace against the cluster it was actually recorded on rather than
    /// the default study platform.
    pub fn from_trace_with(
        trace: &robusched_dag::parsers::TraceDag,
        calibration: &TraceCalibration,
        ul: f64,
        seed: u64,
    ) -> Self {
        Self::from_trace(trace, calibration.machines, calibration.speed_cov, ul, seed)
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.platform.machine_count()
    }

    /// Deterministic (minimum) duration of task `i` on machine `p`.
    #[inline]
    pub fn det_task_cost(&self, i: NodeId, p: usize) -> f64 {
        self.costs.cost(i, p)
    }

    /// Deterministic (minimum) communication time of edge `e` when its
    /// endpoints run on `p` and `q`.
    #[inline]
    pub fn det_comm_cost(&self, e: EdgeId, p: usize, q: usize) -> f64 {
        self.platform.comm_time(self.graph.volume(e), p, q)
    }

    /// *Mean* duration of task `i` on machine `p` under the uncertainty
    /// model (the slack metrics use mean values).
    #[inline]
    pub fn mean_task_cost(&self, i: NodeId, p: usize) -> f64 {
        self.uncertainty
            .mean_weight_with_ul(self.det_task_cost(i, p), self.task_ul(i))
    }

    /// *Mean* communication time of edge `e` on machine pair `(p, q)`.
    #[inline]
    pub fn mean_comm_cost(&self, e: EdgeId, p: usize, q: usize) -> f64 {
        self.uncertainty.mean_weight(self.det_comm_cost(e, p, q))
    }

    /// Duration distribution of task `i` on machine `p`.
    pub fn task_dist(&self, i: NodeId, p: usize) -> WeightDist {
        self.uncertainty
            .weight_dist_with_ul(self.det_task_cost(i, p), self.task_ul(i))
    }

    /// Communication-time distribution of edge `e` on machine pair `(p,q)`.
    pub fn comm_dist(&self, e: EdgeId, p: usize, q: usize) -> WeightDist {
        self.uncertainty.weight_dist(self.det_comm_cost(e, p, q))
    }

    /// Standard deviation of task `i`'s duration on machine `p` — the
    /// ingredient of the σ-aware heuristic the paper's future work asks
    /// for. Closed-form (no distribution is materialized): heuristics
    /// query this per placement candidate.
    pub fn std_task_cost(&self, i: NodeId, p: usize) -> f64 {
        self.uncertainty
            .std_weight_with_ul(self.det_task_cost(i, p), self.task_ul(i))
    }

    /// Standard deviation of edge `e`'s communication time on `(p, q)`
    /// (closed-form, like [`Scenario::std_task_cost`]).
    pub fn std_comm_cost(&self, e: EdgeId, p: usize, q: usize) -> f64 {
        self.uncertainty.std_weight(self.det_comm_cost(e, p, q))
    }

    /// Average duration of task `i` across machines (deterministic values;
    /// rank functions of HEFT/BMCT).
    pub fn avg_det_task_cost(&self, i: NodeId) -> f64 {
        self.costs.mean_cost(i)
    }

    /// Average communication cost of edge `e` over distinct machine pairs
    /// (deterministic values; rank functions).
    pub fn avg_det_comm_cost(&self, e: EdgeId) -> f64 {
        self.platform.mean_latency() + self.graph.volume(e) * self.platform.mean_tau()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusched_dag::generators::cholesky;
    use robusched_randvar::Dist;

    #[test]
    fn paper_random_dimensions() {
        let s = Scenario::paper_random(30, 8, 1.1, 42);
        assert_eq!(s.task_count(), 30);
        assert_eq!(s.machine_count(), 8);
        assert!(s.graph.dag.is_acyclic());
    }

    #[test]
    fn paper_random_deterministic_in_seed() {
        let a = Scenario::paper_random(10, 3, 1.01, 5);
        let b = Scenario::paper_random(10, 3, 1.01, 5);
        for i in 0..10 {
            for p in 0..3 {
                assert_eq!(a.det_task_cost(i, p), b.det_task_cost(i, p));
            }
        }
    }

    #[test]
    fn real_app_case() {
        let s = Scenario::paper_real_app(cholesky(4), 3, 1.01, 7);
        assert_eq!(s.task_count(), 10);
        assert_eq!(s.machine_count(), 3);
        // Unrelated-but-bounded: every machine within 2× of the row min.
        for i in 0..10 {
            let min = s.costs.min_cost(i);
            for p in 0..3 {
                assert!(s.det_task_cost(i, p) <= 2.0 * min + 1e-9);
            }
        }
    }

    #[test]
    fn structured_app_case() {
        use robusched_dag::apps::AppClass;
        let s = Scenario::structured_app(AppClass::Lu.generate(3, 5), 4, 0.5, 1.1, 9);
        assert_eq!(s.task_count(), 14);
        assert_eq!(s.machine_count(), 4);
        // Deterministic in the seed.
        let t = Scenario::structured_app(AppClass::Lu.generate(3, 5), 4, 0.5, 1.1, 9);
        for i in 0..14 {
            for p in 0..4 {
                assert_eq!(s.det_task_cost(i, p), t.det_task_cost(i, p));
            }
        }
        // Consistent heterogeneity: with only 10 % noise over the speed
        // spread, the per-task fastest machine is (nearly) always the same.
        let mut wins = [0usize; 4];
        for i in 0..14 {
            wins[s.costs.fastest_machine(i)] += 1;
        }
        assert!(
            wins.iter().any(|&w| w >= 12),
            "no dominant machine: {wins:?}"
        );
    }

    #[test]
    fn from_trace_case() {
        let dot = r#"digraph t {
          a [size="4e9"]; b [size="8e9"]; c [size="2e9"];
          a -> b [size="1e9"]; b -> c [size="5e8"];
        }"#;
        let trace = robusched_dag::parsers::parse_trace("t.dot", dot).unwrap();
        let s = Scenario::from_trace(&trace, 4, 0.5, 1.1, 11);
        assert_eq!(s.task_count(), 3);
        assert_eq!(s.machine_count(), 4);
        // Mean work lands on the paper's μ_task = 20.
        let mean_work: f64 = s.graph.task_work.iter().sum::<f64>() / s.graph.task_count() as f64;
        assert!((mean_work - 20.0).abs() < 1e-9, "mean work {mean_work}");
        // Deterministic in the seed.
        let t = Scenario::from_trace(&trace, 4, 0.5, 1.1, 11);
        for i in 0..3 {
            for p in 0..4 {
                assert_eq!(s.det_task_cost(i, p), t.det_task_cost(i, p));
            }
        }
    }

    #[test]
    fn from_trace_with_calibration_overrides_platform() {
        let dot = r#"digraph t {
          a [size="4e9"]; b [size="8e9"]; c [size="2e9"];
          a -> b [size="1e9"]; b -> c [size="5e8"];
        }"#;
        let trace = robusched_dag::parsers::parse_trace("t.dot", dot).unwrap();
        // The default calibration is exactly the ext-traces platform.
        let cal = TraceCalibration::default();
        assert_eq!((cal.machines, cal.speed_cov), (8, 0.5));
        let default = Scenario::from_trace_with(&trace, &cal, 1.1, 11);
        let explicit = Scenario::from_trace(&trace, 8, 0.5, 1.1, 11);
        for i in 0..3 {
            for p in 0..8 {
                assert_eq!(default.det_task_cost(i, p), explicit.det_task_cost(i, p));
            }
        }
        // A homogeneous 3-machine override: same costs on every machine up
        // to the 10 % unrelatedness noise.
        let homog = Scenario::from_trace_with(
            &trace,
            &TraceCalibration {
                machines: 3,
                speed_cov: 0.0,
            },
            1.1,
            11,
        );
        assert_eq!(homog.machine_count(), 3);
        for i in 0..3 {
            let min = homog.costs.min_cost(i);
            for p in 0..3 {
                let ratio = homog.det_task_cost(i, p) / min;
                assert!(ratio < 1.5, "task {i} machine {p}: ratio {ratio}");
            }
        }
    }

    #[test]
    fn comm_cost_zero_on_same_machine() {
        let s = Scenario::paper_random(10, 3, 1.1, 1);
        for e in 0..s.graph.edge_count() {
            assert_eq!(s.det_comm_cost(e, 1, 1), 0.0);
            assert!(s.det_comm_cost(e, 0, 1) > 0.0);
        }
    }

    #[test]
    fn task_dist_support_matches_ul() {
        let s = Scenario::paper_random(10, 3, 1.1, 1);
        let d = s.task_dist(4, 2);
        let (lo, hi) = d.support();
        assert!((hi / lo - 1.1).abs() < 1e-9);
        assert_eq!(lo, s.det_task_cost(4, 2));
    }

    #[test]
    fn mean_cost_consistent_with_dist() {
        let s = Scenario::paper_random(10, 3, 1.1, 1);
        let d = s.task_dist(3, 1);
        assert!((s.mean_task_cost(3, 1) - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn avg_costs_positive() {
        let s = Scenario::paper_random(20, 4, 1.01, 9);
        for i in 0..20 {
            assert!(s.avg_det_task_cost(i) > 0.0);
        }
        for e in 0..s.graph.edge_count() {
            assert!(s.avg_det_comm_cost(e) > 0.0);
        }
    }
}
