//! The unrelated-machine cost matrix.
//!
//! §II: "for each task, the minimum duration on each processor is given by
//! a matrix of n rows and m columns". Two builders match the paper's two
//! workload families:
//!
//! * [`CostMatrix::cv_method`] — the coefficient-of-variation gamma method
//!   of Ali et al. \[2\]: task `i`'s durations across machines are Gamma with
//!   mean `task_work[i]` and CV `V_mach` (the paper uses
//!   `V_task = V_mach = 0.5`). This yields a *low degree of unrelatedness*,
//!   which the paper notes makes the heuristics "excellent and consistent".
//! * [`CostMatrix::uniform_range_method`] — the real-application scheme:
//!   "the computation time of each task on each processor is chosen
//!   uniformly in the interval [minVal; 2 × minVal], where minVal is the
//!   minimum processing time and is chosen randomly".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusched_randvar::dist::sample_gamma_mean_cv;

/// Per-machine relative speeds with a tunable coefficient of variation:
/// `m` Gamma draws with mean 1 and CV `cov` (clamped away from zero so no
/// machine becomes infinitely slow). `cov = 0` yields the homogeneous
/// vector of ones; larger values give increasingly heterogeneous but
/// *consistent* platforms — machine `j` is uniformly fast or slow across
/// all tasks, the model the structured-application (`ext-apps`) scenarios
/// use instead of the fully unrelated per-entry draws.
pub fn machine_speeds(m: usize, cov: f64, seed: u64) -> Vec<f64> {
    assert!(m >= 1, "need at least one machine");
    assert!(cov >= 0.0 && cov.is_finite(), "speed CoV must be ≥ 0");
    if cov == 0.0 {
        return vec![1.0; m];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| sample_gamma_mean_cv(&mut rng, 1.0, cov).max(0.05))
        .collect()
}

/// Row-major `n × m` matrix of minimum task durations.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    n: usize,
    m: usize,
    w: Vec<f64>,
}

impl CostMatrix {
    /// Builds from an explicit row-major matrix.
    ///
    /// # Panics
    /// Panics on size mismatch or non-positive/non-finite entries.
    pub fn from_rows(n: usize, m: usize, w: Vec<f64>) -> Self {
        assert_eq!(w.len(), n * m, "matrix must be n×m");
        assert!(
            w.iter().all(|x| x.is_finite() && *x > 0.0),
            "durations must be positive and finite"
        );
        Self { n, m, w }
    }

    /// Ali et al.'s CV method: `w(i, j) ~ Gamma(mean = task_work[i],
    /// cv = v_mach)` independently per machine.
    pub fn cv_method(task_work: &[f64], m: usize, v_mach: f64, seed: u64) -> Self {
        assert!(m >= 1);
        assert!(v_mach > 0.0, "machine CV must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = task_work.len();
        let mut w = Vec::with_capacity(n * m);
        for &work in task_work {
            assert!(work > 0.0, "task work must be positive for the CV method");
            for _ in 0..m {
                // Guard against pathological near-zero draws that would make
                // a task free on some machine.
                let d = sample_gamma_mean_cv(&mut rng, work, v_mach).max(work * 1e-3);
                w.push(d);
            }
        }
        Self { n, m, w }
    }

    /// The real-application scheme: per task, `minVal` is drawn uniformly
    /// from `[min_lo, min_hi]` (scaled by the task's structural work so that
    /// bigger tasks stay bigger), then each machine's duration is uniform in
    /// `[minVal, 2·minVal]`.
    pub fn uniform_range_method(
        task_work: &[f64],
        m: usize,
        min_lo: f64,
        min_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(m >= 1);
        assert!(0.0 < min_lo && min_lo <= min_hi, "bad minVal range");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = task_work.len();
        let mut w = Vec::with_capacity(n * m);
        for &work in task_work {
            let unit = if work > 0.0 { work } else { 1.0 };
            let min_val = unit * rng.gen_range(min_lo..=min_hi);
            for _ in 0..m {
                w.push(rng.gen_range(min_val..=2.0 * min_val));
            }
        }
        Self { n, m, w }
    }

    /// The related-machines (consistent-heterogeneity) method:
    /// `w(i, j) = task_work[i] / speeds[j]`, optionally blurred by a
    /// per-entry Gamma noise factor (mean 1, CV `noise_cv`) that reintroduces
    /// a controlled degree of unrelatedness. With `noise_cv = 0` the matrix
    /// is exactly rank-one in `(work, 1/speed)` — a *consistent* platform in
    /// the Braun et al. taxonomy — which is what structured-application
    /// tasks expect: a fast machine is fast for every kernel.
    pub fn related_method(task_work: &[f64], speeds: &[f64], noise_cv: f64, seed: u64) -> Self {
        let m = speeds.len();
        assert!(m >= 1, "need at least one machine");
        assert!(
            speeds.iter().all(|s| s.is_finite() && *s > 0.0),
            "machine speeds must be positive and finite"
        );
        assert!(
            noise_cv >= 0.0 && noise_cv.is_finite(),
            "noise CV must be ≥ 0"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = task_work.len();
        let mut w = Vec::with_capacity(n * m);
        for &work in task_work {
            assert!(work > 0.0, "task work must be positive");
            for &s in speeds {
                let noise = if noise_cv == 0.0 {
                    1.0
                } else {
                    sample_gamma_mean_cv(&mut rng, 1.0, noise_cv).max(0.05)
                };
                w.push(work / s * noise);
            }
        }
        Self { n, m, w }
    }

    /// Number of tasks (rows).
    pub fn task_count(&self) -> usize {
        self.n
    }

    /// Number of machines (columns).
    pub fn machine_count(&self) -> usize {
        self.m
    }

    /// Minimum duration of task `i` on machine `j`.
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> f64 {
        self.w[i * self.m + j]
    }

    /// Mean duration of task `i` across machines (rank functions).
    pub fn mean_cost(&self, i: usize) -> f64 {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter().sum::<f64>() / self.m as f64
    }

    /// Machine minimizing task `i`'s duration.
    pub fn fastest_machine(&self, i: usize) -> usize {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap()
    }

    /// The minimum duration of task `i` over all machines.
    pub fn min_cost(&self, i: usize) -> f64 {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_matrix_accessors() {
        let c = CostMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 6.0, 5.0, 4.0]);
        assert_eq!(c.cost(0, 0), 1.0);
        assert_eq!(c.cost(1, 2), 4.0);
        assert_eq!(c.mean_cost(0), 2.0);
        assert_eq!(c.fastest_machine(1), 2);
        assert_eq!(c.min_cost(1), 4.0);
    }

    #[test]
    fn cv_method_statistics() {
        let work = vec![20.0; 500];
        let c = CostMatrix::cv_method(&work, 8, 0.5, 11);
        let all: Vec<f64> = (0..500)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| c.cost(i, j))
            .collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
        let var = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / all.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.5).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn cv_method_deterministic() {
        let work = vec![10.0, 20.0];
        let a = CostMatrix::cv_method(&work, 4, 0.5, 3);
        let b = CostMatrix::cv_method(&work, 4, 0.5, 3);
        for i in 0..2 {
            for j in 0..4 {
                assert_eq!(a.cost(i, j), b.cost(i, j));
            }
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let work = vec![1.0; 50];
        let c = CostMatrix::uniform_range_method(&work, 4, 10.0, 30.0, 7);
        for i in 0..50 {
            let min = c.min_cost(i);
            for j in 0..4 {
                let w = c.cost(i, j);
                assert!(w >= min && w <= 2.0 * min * (1.0 + 1e-12) * 2.0);
                // All entries within a factor 2 of the row minimum... loose
                // but the defining property:
                assert!(w / min <= 2.0 + 1e-9, "ratio {}", w / min);
            }
        }
    }

    #[test]
    fn uniform_range_scales_with_work() {
        let work = vec![1.0, 100.0];
        let c = CostMatrix::uniform_range_method(&work, 4, 10.0, 30.0, 13);
        assert!(c.mean_cost(1) > c.mean_cost(0) * 10.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cost() {
        CostMatrix::from_rows(1, 2, vec![0.0, 1.0]);
    }

    #[test]
    fn machine_speeds_statistics() {
        let s = machine_speeds(2000, 0.5, 17);
        assert_eq!(s.len(), 2000);
        assert!(s.iter().all(|x| *x >= 0.05));
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean speed {mean}");
        let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / s.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.5).abs() < 0.05, "speed cv {cv}");
        // Degenerate CoV: homogeneous ones.
        assert_eq!(machine_speeds(4, 0.0, 3), vec![1.0; 4]);
        // Deterministic in the seed.
        assert_eq!(machine_speeds(8, 0.3, 9), machine_speeds(8, 0.3, 9));
    }

    #[test]
    fn related_method_is_consistent_without_noise() {
        let work = vec![3.0, 7.0, 11.0];
        let speeds = vec![1.0, 2.0, 0.5];
        let c = CostMatrix::related_method(&work, &speeds, 0.0, 1);
        for (i, &wk) in work.iter().enumerate() {
            for (j, &s) in speeds.iter().enumerate() {
                assert!((c.cost(i, j) - wk / s).abs() < 1e-12);
            }
        }
        // Consistency: machine orderings agree across every task.
        for i in 0..3 {
            assert_eq!(c.fastest_machine(i), 1);
        }
    }

    #[test]
    fn related_method_noise_stays_near_consistent() {
        let work = vec![10.0; 300];
        let speeds = vec![1.0, 4.0];
        let c = CostMatrix::related_method(&work, &speeds, 0.1, 5);
        // The 4× speed gap dominates the 10 % noise: the fast machine wins
        // on (essentially) every row.
        let fast_wins = (0..300).filter(|&i| c.fastest_machine(i) == 1).count();
        assert!(fast_wins >= 295, "fast machine won only {fast_wins}/300");
        // Noise is mean-1: column means track work/speed.
        let col0 = (0..300).map(|i| c.cost(i, 0)).sum::<f64>() / 300.0;
        assert!((col0 - 10.0).abs() < 0.5, "col0 mean {col0}");
    }
}
