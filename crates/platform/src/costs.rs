//! The unrelated-machine cost matrix.
//!
//! §II: "for each task, the minimum duration on each processor is given by
//! a matrix of n rows and m columns". Two builders match the paper's two
//! workload families:
//!
//! * [`CostMatrix::cv_method`] — the coefficient-of-variation gamma method
//!   of Ali et al. \[2\]: task `i`'s durations across machines are Gamma with
//!   mean `task_work[i]` and CV `V_mach` (the paper uses
//!   `V_task = V_mach = 0.5`). This yields a *low degree of unrelatedness*,
//!   which the paper notes makes the heuristics "excellent and consistent".
//! * [`CostMatrix::uniform_range_method`] — the real-application scheme:
//!   "the computation time of each task on each processor is chosen
//!   uniformly in the interval [minVal; 2 × minVal], where minVal is the
//!   minimum processing time and is chosen randomly".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusched_randvar::dist::sample_standard_gamma;

/// Row-major `n × m` matrix of minimum task durations.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    n: usize,
    m: usize,
    w: Vec<f64>,
}

impl CostMatrix {
    /// Builds from an explicit row-major matrix.
    ///
    /// # Panics
    /// Panics on size mismatch or non-positive/non-finite entries.
    pub fn from_rows(n: usize, m: usize, w: Vec<f64>) -> Self {
        assert_eq!(w.len(), n * m, "matrix must be n×m");
        assert!(
            w.iter().all(|x| x.is_finite() && *x > 0.0),
            "durations must be positive and finite"
        );
        Self { n, m, w }
    }

    /// Ali et al.'s CV method: `w(i, j) ~ Gamma(mean = task_work[i],
    /// cv = v_mach)` independently per machine.
    pub fn cv_method(task_work: &[f64], m: usize, v_mach: f64, seed: u64) -> Self {
        assert!(m >= 1);
        assert!(v_mach > 0.0, "machine CV must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = 1.0 / (v_mach * v_mach);
        let n = task_work.len();
        let mut w = Vec::with_capacity(n * m);
        for &work in task_work {
            assert!(work > 0.0, "task work must be positive for the CV method");
            let scale = work * v_mach * v_mach;
            for _ in 0..m {
                // Guard against pathological near-zero draws that would make
                // a task free on some machine.
                let d = (sample_standard_gamma(&mut rng, shape) * scale).max(work * 1e-3);
                w.push(d);
            }
        }
        Self { n, m, w }
    }

    /// The real-application scheme: per task, `minVal` is drawn uniformly
    /// from `[min_lo, min_hi]` (scaled by the task's structural work so that
    /// bigger tasks stay bigger), then each machine's duration is uniform in
    /// `[minVal, 2·minVal]`.
    pub fn uniform_range_method(
        task_work: &[f64],
        m: usize,
        min_lo: f64,
        min_hi: f64,
        seed: u64,
    ) -> Self {
        assert!(m >= 1);
        assert!(0.0 < min_lo && min_lo <= min_hi, "bad minVal range");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = task_work.len();
        let mut w = Vec::with_capacity(n * m);
        for &work in task_work {
            let unit = if work > 0.0 { work } else { 1.0 };
            let min_val = unit * rng.gen_range(min_lo..=min_hi);
            for _ in 0..m {
                w.push(rng.gen_range(min_val..=2.0 * min_val));
            }
        }
        Self { n, m, w }
    }

    /// Number of tasks (rows).
    pub fn task_count(&self) -> usize {
        self.n
    }

    /// Number of machines (columns).
    pub fn machine_count(&self) -> usize {
        self.m
    }

    /// Minimum duration of task `i` on machine `j`.
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> f64 {
        self.w[i * self.m + j]
    }

    /// Mean duration of task `i` across machines (rank functions).
    pub fn mean_cost(&self, i: usize) -> f64 {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter().sum::<f64>() / self.m as f64
    }

    /// Machine minimizing task `i`'s duration.
    pub fn fastest_machine(&self, i: usize) -> usize {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap()
    }

    /// The minimum duration of task `i` over all machines.
    pub fn min_cost(&self, i: usize) -> f64 {
        let row = &self.w[i * self.m..(i + 1) * self.m];
        row.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_matrix_accessors() {
        let c = CostMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 6.0, 5.0, 4.0]);
        assert_eq!(c.cost(0, 0), 1.0);
        assert_eq!(c.cost(1, 2), 4.0);
        assert_eq!(c.mean_cost(0), 2.0);
        assert_eq!(c.fastest_machine(1), 2);
        assert_eq!(c.min_cost(1), 4.0);
    }

    #[test]
    fn cv_method_statistics() {
        let work = vec![20.0; 500];
        let c = CostMatrix::cv_method(&work, 8, 0.5, 11);
        let all: Vec<f64> = (0..500)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| c.cost(i, j))
            .collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
        let var = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / all.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.5).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn cv_method_deterministic() {
        let work = vec![10.0, 20.0];
        let a = CostMatrix::cv_method(&work, 4, 0.5, 3);
        let b = CostMatrix::cv_method(&work, 4, 0.5, 3);
        for i in 0..2 {
            for j in 0..4 {
                assert_eq!(a.cost(i, j), b.cost(i, j));
            }
        }
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let work = vec![1.0; 50];
        let c = CostMatrix::uniform_range_method(&work, 4, 10.0, 30.0, 7);
        for i in 0..50 {
            let min = c.min_cost(i);
            for j in 0..4 {
                let w = c.cost(i, j);
                assert!(w >= min && w <= 2.0 * min * (1.0 + 1e-12) * 2.0);
                // All entries within a factor 2 of the row minimum... loose
                // but the defining property:
                assert!(w / min <= 2.0 + 1e-9, "ratio {}", w / min);
            }
        }
    }

    #[test]
    fn uniform_range_scales_with_work() {
        let work = vec![1.0, 100.0];
        let c = CostMatrix::uniform_range_method(&work, 4, 10.0, 30.0, 13);
        assert!(c.mean_cost(1) > c.mean_cost(0) * 10.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cost() {
        CostMatrix::from_rows(1, 2, vec![0.0, 1.0]);
    }
}
