//! # robusched-platform
//!
//! The heterogeneous target platform and uncertainty model of the paper.
//!
//! §II: machines are *unrelated* — an `n × m` matrix gives the minimum
//! duration of every task on every machine. Communications are modeled by
//! two `m × m` matrices: `τ` (time per data element) and `L` (latency),
//! with zero diagonals so co-located tasks communicate for free. Under
//! uncertainty, every duration `w` becomes a random variable supported on
//! `[w, UL·w]` (Beta(2, 5) in the paper; this crate also offers uniform and
//! triangular substitutions for the sensitivity extensions).
//!
//! Modules:
//! * [`machines`] — [`machines::Platform`]: `τ`/`L` matrices + generators;
//! * [`costs`] — [`costs::CostMatrix`]: the unrelated duration matrix, with
//!   the CV-based gamma method of Ali et al. (random graphs), the
//!   `[minVal, 2·minVal]` uniform method (real-application graphs), and the
//!   related-machines speed-vector method ([`costs::machine_speeds`] +
//!   [`costs::CostMatrix::related_method`]) behind the structured
//!   `ext-apps` scenarios;
//! * [`uncertainty`] — [`uncertainty::UncertaintyModel`] and the
//!   [`uncertainty::WeightDist`] enum dispatching the per-weight
//!   distributions without boxing;
//! * [`scenario`] — [`scenario::Scenario`]: one fully specified problem
//!   instance (task graph + platform + costs + uncertainty), the input of
//!   every scheduler and evaluator in the workspace.

pub mod costs;
pub mod machines;
pub mod scenario;
pub mod uncertainty;

pub use costs::{machine_speeds, CostMatrix};
pub use machines::Platform;
pub use scenario::{Scenario, TraceCalibration};
pub use uncertainty::{UncertaintyKind, UncertaintyModel, WeightDist};
