//! Seconds-scale smoke test of the complete study pipeline.
//!
//! The full integration suites take minutes; this one case (n = 10 tasks,
//! m = 3 machines, k = 50 random schedules) runs the identical code path —
//! generation → heuristics → analytic evaluation → metrics → correlation
//! matrix — in a few seconds, so CI catches pipeline-level regressions
//! immediately.

#![allow(deprecated)] // pins the legacy run_case surface on purpose

use robusched::core::{run_case, StudyConfig, METRIC_LABELS};
use robusched::platform::Scenario;

#[test]
fn tiny_paper_random_case_end_to_end() {
    let s = Scenario::paper_random(10, 3, 1.1, 2024);
    let res = run_case(
        &s,
        &StudyConfig {
            random_schedules: 50,
            seed: 7,
            with_heuristics: true,
            ..Default::default()
        },
    );

    assert_eq!(res.random.len(), 50);
    assert!(!res.heuristics.is_empty());

    // Every metric vector is finite and physically sensible.
    for m in res
        .random
        .iter()
        .chain(res.heuristics.iter().map(|(_, m)| m))
    {
        assert!(m.expected_makespan.is_finite() && m.expected_makespan > 0.0);
        assert!(m.makespan_std.is_finite() && m.makespan_std >= 0.0);
        assert!((0.0..=1.0).contains(&m.prob_absolute));
        assert!((0.0..=1.0).contains(&m.prob_relative));
    }

    // The correlation matrix is complete, symmetric, unit-diagonal.
    let dim = res.pearson.dim();
    assert_eq!(dim, METRIC_LABELS.len());
    for i in 0..dim {
        assert_eq!(res.pearson.get(i, i), 1.0);
        for j in 0..dim {
            let r = res.pearson.get(i, j);
            assert!(r.is_finite() && r.abs() <= 1.0, "r[{i}][{j}] = {r}");
            assert_eq!(r, res.pearson.get(j, i));
        }
    }
}
