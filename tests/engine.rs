//! Engine-redesign coverage: the pluggable `StudyBuilder` pipeline.
//!
//! Locks in the redesign's three contracts:
//! 1. **registries round-trip** — every bundled heuristic, evaluator and
//!    experiment resolves by its own name;
//! 2. **streaming equivalence** — streamed Pearson/Spearman match the
//!    buffered two-pass matrices to 1e-12, and the builder + classic
//!    evaluator reproduces the legacy `run_case` output bit-for-bit;
//! 3. **cross-backend determinism** — under *any* evaluator, the same
//!    seed yields identical streamed moments for any thread count.

#![allow(deprecated)] // run_case is exercised on purpose (shim equivalence)

use robusched::core::{
    metric_index as idx, pearson_matrix, run_case, spearman_matrix, MetricValues, StudyBuilder,
    StudyConfig, StudyError,
};
use robusched::platform::Scenario;
use robusched::{experiments, sched, stochastic};

#[test]
fn heuristic_registry_round_trips() {
    let names: Vec<String> = sched::registry().iter().map(|h| h.name().into()).collect();
    assert!(names.iter().any(|n| n == "HEFT"));
    assert!(names.iter().any(|n| n == "BIL"));
    assert!(names.iter().any(|n| n == "Hyb.BMCT"));
    assert!(names.iter().any(|n| n == "CPOP"));
    assert!(names.iter().any(|n| n == "σ-HEFT"));
    for n in &names {
        assert_eq!(sched::heuristic_by_name(n).unwrap().name(), n);
    }
}

#[test]
fn evaluator_registry_round_trips() {
    let names: Vec<String> = stochastic::registry()
        .iter()
        .map(|e| e.name().into())
        .collect();
    assert_eq!(
        names,
        [
            "classic",
            "spelde",
            "dodin",
            "montecarlo",
            "mc-anti",
            "mc-strat"
        ]
    );
    for n in &names {
        assert_eq!(stochastic::evaluator_by_name(n).unwrap().name(), n);
    }
}

#[test]
fn experiment_registry_round_trips() {
    for e in experiments::registry() {
        use robusched::experiments::Experiment;
        let found = experiments::experiment_by_name(e.name()).unwrap();
        assert_eq!(found.name(), e.name());
    }
    assert!(experiments::experiment_by_name("ext-backends").is_some());
    assert!(experiments::experiment_by_name("no-such-study").is_none());
}

#[test]
fn builder_reproduces_run_case_bit_for_bit() {
    // The acceptance contract: StudyBuilder + classic evaluator must equal
    // the legacy monolith exactly, rows and matrices alike.
    let scenario = Scenario::paper_random(15, 4, 1.1, 21);
    let legacy = run_case(
        &scenario,
        &StudyConfig {
            random_schedules: 200,
            seed: 7,
            with_heuristics: true,
            with_cpop: true,
            ..Default::default()
        },
    );
    let res = StudyBuilder::new(&scenario)
        .random_schedules(200)
        .seed(7)
        .heuristics(&["HEFT", "BIL", "Hyb.BMCT", "CPOP"])
        .buffer_metrics(true)
        .run()
        .unwrap();
    let random = res.random.as_ref().unwrap();
    assert_eq!(random.as_slice(), legacy.random.as_slice());
    assert_eq!(res.heuristics, legacy.heuristics);
    let pearson = pearson_matrix(random);
    for i in 0..pearson.dim() {
        for j in 0..pearson.dim() {
            assert_eq!(
                pearson.get(i, j),
                legacy.pearson.get(i, j),
                "cell ({i},{j})"
            );
        }
    }
}

#[test]
fn streamed_matrices_match_buffered_to_1e12() {
    let scenario = Scenario::paper_random(12, 3, 1.1, 5);
    let res = StudyBuilder::new(&scenario)
        .random_schedules(200)
        .seed(11)
        .buffer_metrics(true)
        .run()
        .unwrap();
    let rows = res.random.as_ref().unwrap();
    assert!(res.reservoir.is_exact(), "200 rows fit the reservoir");
    let cases = [
        (pearson_matrix(rows), res.pearson_streamed(), "Pearson"),
        (spearman_matrix(rows), res.spearman_streamed(), "Spearman"),
    ];
    for (buffered, streamed, what) in &cases {
        for i in 0..buffered.dim() {
            for j in 0..buffered.dim() {
                assert!(
                    (buffered.get(i, j) - streamed.get(i, j)).abs() < 1e-12,
                    "{what} ({i},{j}): buffered {} vs streamed {}",
                    buffered.get(i, j),
                    streamed.get(i, j)
                );
            }
        }
    }
}

#[test]
fn cross_backend_determinism_any_thread_count() {
    // Same seed + any thread count ⇒ bit-identical streamed moments,
    // under every registered evaluator.
    let scenario = Scenario::paper_random(10, 3, 1.1, 13);
    for name in ["classic", "spelde", "dodin", "montecarlo"] {
        let run_with = |threads: usize| {
            StudyBuilder::new(&scenario)
                .random_schedules(96)
                .seed(29)
                .threads(threads)
                .evaluator_named(name)
                .run()
                .unwrap()
        };
        let a = run_with(1);
        let b = run_with(3);
        assert_eq!(a.random_count(), 96);
        let (pa, pb) = (a.pearson_streamed(), b.pearson_streamed());
        let (sa, sb) = (a.spearman_streamed(), b.spearman_streamed());
        for i in 0..pa.dim() {
            for j in 0..pa.dim() {
                assert_eq!(pa.get(i, j), pb.get(i, j), "{name} Pearson ({i},{j})");
                assert_eq!(sa.get(i, j), sb.get(i, j), "{name} Spearman ({i},{j})");
            }
        }
    }
}

#[test]
fn evaluator_swap_preserves_the_cluster_classic_vs_spelde() {
    let scenario = Scenario::paper_random(10, 3, 1.1, 3);
    let corr = |evaluator: &str| {
        StudyBuilder::new(&scenario)
            .random_schedules(150)
            .seed(5)
            .evaluator_named(evaluator)
            .run()
            .unwrap()
            .pearson_streamed()
            .get(idx("makespan_std"), idx("avg_lateness"))
    };
    assert!(corr("classic") > 0.9);
    assert!(corr("spelde") > 0.9);
}

#[test]
fn sink_streams_in_sampling_order_without_buffering() {
    let scenario = Scenario::paper_random(10, 3, 1.1, 17);
    let mut seen = Vec::new();
    let mut sink = |i: usize, m: &MetricValues| seen.push((i, m.expected_makespan));
    let res = StudyBuilder::new(&scenario)
        .random_schedules(100)
        .seed(2)
        .threads(4)
        .sink(&mut sink)
        .run()
        .unwrap();
    assert!(res.random.is_none(), "no buffering requested");
    assert_eq!(res.random_count(), 100);
    let indices: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
    assert_eq!(indices, (0..100).collect::<Vec<_>>());
}

#[test]
fn try_makespans_return_errors_not_aborts() {
    use robusched::sched::{try_det_makespan, try_mean_makespan, Schedule, ScheduleError};
    let scenario = Scenario::paper_random(6, 2, 1.1, 1);
    // A deadlocked schedule: put the head of some precedence edge *after*
    // its successor on the single machine everything runs on.
    let (u, v, _) = scenario.graph.dag.edge_triples().next().expect("has edges");
    let n = scenario.task_count();
    let mut order = vec![v, u];
    order.extend((0..n).filter(|&t| t != u && t != v));
    let bad = Schedule::new(vec![0; n], vec![order]);
    assert_eq!(
        try_det_makespan(&scenario, &bad).unwrap_err(),
        ScheduleError::Deadlock
    );
    assert_eq!(
        try_mean_makespan(&scenario, &bad).unwrap_err(),
        ScheduleError::Deadlock
    );
    // Valid schedules still succeed and match the panicking wrappers.
    let good = robusched::sched::heft(&scenario);
    assert_eq!(
        try_det_makespan(&scenario, &good).unwrap(),
        robusched::sched::det_makespan(&scenario, &good)
    );
    assert_eq!(
        try_mean_makespan(&scenario, &good).unwrap(),
        robusched::sched::mean_makespan(&scenario, &good)
    );
}

#[test]
fn builder_rejects_zero_threads_and_unknown_names() {
    let scenario = Scenario::paper_random(8, 2, 1.1, 9);
    assert_eq!(
        StudyBuilder::new(&scenario)
            .random_schedules(10)
            .threads(0)
            .run()
            .unwrap_err(),
        StudyError::ZeroThreads
    );
    assert!(matches!(
        StudyBuilder::new(&scenario)
            .random_schedules(10)
            .heuristics(&["HEFTY"])
            .run()
            .unwrap_err(),
        StudyError::UnknownHeuristic(_)
    ));
    assert!(matches!(
        StudyBuilder::new(&scenario)
            .random_schedules(10)
            .evaluator_named("exact")
            .run()
            .unwrap_err(),
        StudyError::UnknownEvaluator(_)
    ));
}
