//! Integration: the four makespan evaluators agree where they should.
//!
//! §V of the paper: Dodin and Spelde "both gave similar results to the
//! classical algorithm"; the classical algorithm in turn tracks the
//! Monte-Carlo ground truth for small graphs (Fig. 1). These tests pin the
//! same structure across the whole stack.

use robusched::dag::generators;
use robusched::platform::{CostMatrix, Platform, Scenario, UncertaintyModel};
use robusched::sched::{heft, random_schedule, Schedule};
use robusched::stochastic::{
    accuracy, evaluate_classic, evaluate_dodin, evaluate_spelde, mc_makespans, McConfig,
};

fn mc_mean_std(scenario: &Scenario, sched: &Schedule, n: usize) -> (f64, f64) {
    let xs = mc_makespans(
        scenario,
        sched,
        &McConfig {
            realizations: n,
            seed: 77,
            threads: None,
            ..Default::default()
        },
    );
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

/// All evaluators on one scenario/schedule; asserts pairwise agreement.
fn assert_agreement(scenario: &Scenario, sched: &Schedule, mean_tol: f64, std_factor: f64) {
    let classic = evaluate_classic(scenario, sched);
    let spelde = evaluate_spelde(scenario, sched);
    let dodin = evaluate_dodin(scenario, sched, 64);
    let (mc_mean, mc_std) = mc_mean_std(scenario, sched, 40_000);

    for (name, mean) in [
        ("classic", classic.mean()),
        ("spelde", spelde.mean),
        ("dodin", dodin.mean()),
    ] {
        assert!(
            (mean - mc_mean).abs() / mc_mean < mean_tol,
            "{name} mean {mean} vs MC {mc_mean}"
        );
    }
    for (name, std) in [
        ("classic", classic.std_dev()),
        ("spelde", spelde.std_dev),
        ("dodin", dodin.std_dev()),
    ] {
        assert!(
            std < std_factor * mc_std + 1e-9 && std > mc_std / std_factor - 1e-9,
            "{name} std {std} vs MC {mc_std}"
        );
    }
}

#[test]
fn chain_exact_for_everyone() {
    let tg = generators::chain(6);
    let costs = CostMatrix::from_rows(6, 2, vec![10.0; 12]);
    let s = Scenario::new(
        tg,
        Platform::paper_default(2),
        costs,
        UncertaintyModel::paper(1.3),
    );
    let sched = Schedule::new(vec![0; 6], vec![(0..6).collect(), vec![]]);
    assert_agreement(&s, &sched, 0.005, 1.2);
}

#[test]
fn fork_join_small() {
    let tg = generators::fork_join(4);
    let costs = CostMatrix::from_rows(5, 4, vec![10.0; 20]);
    let s = Scenario::new(
        tg,
        Platform::paper_default(4),
        costs,
        UncertaintyModel::paper(1.5),
    );
    let sched = Schedule::new(
        vec![0, 1, 2, 3, 0],
        vec![vec![0, 4], vec![1], vec![2], vec![3]],
    );
    // Join of four correlated-free branches: analytic max is exact here
    // (branches truly independent), Spelde is moment-matched.
    assert_agreement(&s, &sched, 0.01, 1.5);
}

#[test]
fn cholesky_heft_schedule() {
    let s = Scenario::paper_real_app(generators::cholesky(5), 3, 1.1, 5);
    let sched = heft(&s);
    assert_agreement(&s, &sched, 0.01, 1.6);
}

#[test]
fn random_graph_random_schedules() {
    let s = Scenario::paper_random(20, 4, 1.1, 31);
    for k in 0..3 {
        let sched = random_schedule(&s.graph.dag, 4, 1000 + k);
        assert_agreement(&s, &sched, 0.015, 1.8);
    }
}

#[test]
fn classic_tracks_mc_cdf_closely_on_small_graphs() {
    // The Fig. 1 acceptance criterion: KS ≤ ~0.1 on small graphs.
    let s = Scenario::paper_random(10, 3, 1.1, 13);
    let sched = random_schedule(&s.graph.dag, 3, 99);
    let analytic = evaluate_classic(&s, &sched);
    let samples = mc_makespans(
        &s,
        &sched,
        &McConfig {
            realizations: 50_000,
            seed: 5,
            threads: None,
            ..Default::default()
        },
    );
    let rep = accuracy::compare(&analytic, &samples);
    assert!(rep.ks < 0.06, "KS = {} too large for n = 10", rep.ks);
}

#[test]
fn evaluators_order_schedules_consistently() {
    // If classic says schedule A is more robust (smaller σ) than B by a
    // clear margin, Spelde and MC agree on the ordering.
    let s = Scenario::paper_random(25, 4, 1.2, 17);
    let a = heft(&s);
    let b = random_schedule(&s.graph.dag, 4, 4242);
    let ca = evaluate_classic(&s, &a);
    let cb = evaluate_classic(&s, &b);
    // Only meaningful when the margin is clear.
    if (ca.std_dev() - cb.std_dev()).abs() > 0.3 * ca.std_dev().max(cb.std_dev()) {
        let sa = evaluate_spelde(&s, &a);
        let sb = evaluate_spelde(&s, &b);
        assert_eq!(
            ca.std_dev() < cb.std_dev(),
            sa.std_dev < sb.std_dev,
            "classic and Spelde disagree on robustness ordering"
        );
        let (_, ma) = mc_mean_std(&s, &a, 30_000);
        let (_, mb) = mc_mean_std(&s, &b, 30_000);
        assert_eq!(
            ca.std_dev() < cb.std_dev(),
            ma < mb,
            "classic and MC disagree on robustness ordering"
        );
    }
}
