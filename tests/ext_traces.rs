//! Smoke-scale run of the real-workflow-trace (`ext-traces`) study: locks
//! the `ext_traces_summary.csv` schema, requires a populated cluster
//! verdict for every committed trace, and pins bit-identity of the
//! correlation matrices across worker-thread counts.

use robusched::experiments::ext::traces;
use robusched::experiments::RunOptions;

#[test]
fn ext_traces_smoke_run_locks_summary_schema() {
    let dir = std::env::temp_dir().join(format!("robusched-ext-traces-{}", std::process::id()));
    let opts = RunOptions {
        scale: 0.01,
        out_dir: Some(dir.clone()),
        seed: 5,
        threads: None,
    };
    let t = traces::run(&opts).expect("study failed");

    // One aggregate per committed trace, in fixture order.
    assert_eq!(t.traces.len(), traces::SAMPLE_TRACES.len());
    let names: Vec<&str> = t.traces.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        ["montage-like", "epigenomics-like", "cybershake-like"]
    );
    let formats: Vec<&str> = t.traces.iter().map(|r| r.format.as_str()).collect();
    assert_eq!(formats, ["dax", "json", "dot"]);

    // Per-trace matrices: one pearson + one spearman CSV each, 8 metric
    // labels → 9 CSV lines (header + 8 rows).
    for r in &t.traces {
        for kind in ["pearson", "spearman"] {
            let path = dir.join(format!("ext_traces_{}_{kind}.csv", r.name));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 9, "{}", path.display());
            assert!(lines[0].contains("avg_makespan"));
            assert!(lines[0].contains("rel_prob"));
        }
    }

    // Summary: fixed header + one row per trace; the verdict column is
    // populated (a boolean, not blank) for every trace even at --scale
    // 0.01.
    let summary = std::fs::read_to_string(dir.join("ext_traces_summary.csv")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines[0], traces::SUMMARY_HEADER);
    assert_eq!(lines.len(), 1 + t.traces.len());
    for (line, r) in lines[1..].iter().zip(&t.traces) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), traces::SUMMARY_HEADER.split(',').count());
        assert_eq!(fields[0], r.name);
        assert_eq!(fields[1], r.format);
        assert_eq!(fields[2].parse::<usize>().unwrap(), r.tasks);
        assert_eq!(fields[3].parse::<usize>().unwrap(), r.edges);
        assert!(fields[4].parse::<f64>().unwrap() > 0.0, "CCR must be real");
        // Key cells are finite numbers.
        for field in &fields[6..12] {
            assert!(
                field.parse::<f64>().unwrap().is_finite(),
                "bad cell {field}"
            );
        }
        let verdict = fields[12];
        assert!(
            verdict == "true" || verdict == "false",
            "verdict must be populated, got '{verdict}'"
        );
    }

    let _ = std::fs::remove_dir_all(dir);
}

/// The streaming correlation pipeline must be bit-identical across worker
/// thread counts — the same guarantee the core study tests pin, re-checked
/// on trace-derived scenarios (their edge wiring differs structurally from
/// every generator family).
#[test]
fn ext_traces_thread_count_invariance() {
    let run_with = |threads: Option<usize>| {
        let opts = RunOptions {
            scale: 0.01,
            out_dir: None,
            seed: 7,
            threads,
        };
        traces::run(&opts).expect("study failed")
    };
    let base = run_with(Some(1));
    for threads in [2, 4] {
        let other = run_with(Some(threads));
        for (a, b) in base.traces.iter().zip(&other.traces) {
            assert_eq!(a.name, b.name);
            for i in 0..a.pearson_mean.dim() {
                for j in 0..a.pearson_mean.dim() {
                    assert_eq!(
                        a.pearson_mean.get(i, j).to_bits(),
                        b.pearson_mean.get(i, j).to_bits(),
                        "{}: pearson[{i}][{j}] differs at {threads} threads",
                        a.name
                    );
                    assert_eq!(
                        a.spearman_mean.get(i, j).to_bits(),
                        b.spearman_mean.get(i, j).to_bits(),
                        "{}: spearman[{i}][{j}] differs at {threads} threads",
                        a.name
                    );
                }
            }
        }
    }
}
