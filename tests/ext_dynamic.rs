//! Smoke-scale run of the arrival-driven (`ext-dynamic`) study plus the
//! committed full-scale artifact: locks the `ext_dynamic_summary.csv`
//! schema, pins bit-identity of the summary across worker-thread counts
//! and repeat runs, and asserts the headline result on the committed CSV —
//! some probabilistic dropping policy strictly beats never-drop on
//! deadline hit-rate at every oversubscribed load.

use robusched::experiments::ext::dynamic;
use robusched::experiments::RunOptions;
use std::collections::HashMap;

fn smoke_opts(threads: Option<usize>) -> RunOptions {
    RunOptions {
        scale: 0.01,
        out_dir: None,
        seed: 11,
        threads,
    }
}

#[test]
fn ext_dynamic_smoke_run_locks_summary_schema() {
    let dir = std::env::temp_dir().join(format!("robusched-ext-dynamic-{}", std::process::id()));
    let opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..smoke_opts(None)
    };
    let d = dynamic::run(&opts).expect("study failed");
    assert_eq!(
        d.cells.len(),
        dynamic::OVERSUB.len() * dynamic::POLICIES.len()
    );

    let summary = std::fs::read_to_string(dir.join("ext_dynamic_summary.csv")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines[0], dynamic::SUMMARY_HEADER);
    assert_eq!(lines.len(), 1 + d.cells.len());
    let columns = dynamic::SUMMARY_HEADER.split(',').count();
    for (line, cell) in lines[1..].iter().zip(&d.cells) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), columns);
        assert_eq!(fields[0].parse::<f64>().unwrap(), cell.oversub);
        assert_eq!(fields[1], cell.policy);
        // Conservation: every arrival is rejected, dropped, or completed.
        let instances: usize = fields[2].parse().unwrap();
        let rejected: usize = fields[4].parse().unwrap();
        let dropped: usize = fields[5].parse().unwrap();
        let completed: usize = fields[6].parse().unwrap();
        assert_eq!(rejected + dropped + completed, instances, "{line}");
        // Rates are proper fractions.
        for field in &fields[8..] {
            let v: f64 = field.parse().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&v), "bad rate {field}");
        }
    }

    let _ = std::fs::remove_dir_all(dir);
}

/// The summary must be bit-identical for any `--threads` value and across
/// repeat runs — whole cells are sharded by index with per-cell derived
/// seeds, so scheduling nondeterminism never reaches the CSV.
#[test]
fn ext_dynamic_summary_is_reproducible() {
    let base = dynamic::summary_csv(&dynamic::run(&smoke_opts(Some(1))).unwrap());
    for threads in [1, 2, 4] {
        let again = dynamic::summary_csv(&dynamic::run(&smoke_opts(Some(threads))).unwrap());
        assert_eq!(base, again, "summary differs at {threads} threads");
    }
}

/// The committed full-scale artifact carries the study's headline: at every
/// oversubscribed load (> 1), some probabilistic policy (`prune@θ` or
/// `gate@θ`) strictly beats never-drop on workflow deadline hit-rate, and
/// never-drop wastes the most machine time.
#[test]
fn committed_artifact_shows_pruning_dominates() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/ext_dynamic_summary.csv"
    );
    let text = std::fs::read_to_string(path).expect("committed artifact present");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(dynamic::SUMMARY_HEADER));

    // (oversub, policy) -> (hit_rate, wasted_frac)
    let mut cells: HashMap<(String, String), (f64, f64)> = HashMap::new();
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), dynamic::SUMMARY_HEADER.split(',').count());
        assert_eq!(fields[2], "400", "committed artifact must be full-scale");
        cells.insert(
            (fields[0].to_string(), fields[1].to_string()),
            (fields[8].parse().unwrap(), fields[10].parse().unwrap()),
        );
    }
    assert_eq!(
        cells.len(),
        dynamic::OVERSUB.len() * dynamic::POLICIES.len()
    );

    for &oversub in dynamic::OVERSUB.iter().filter(|&&o| o > 1.0) {
        let key = |policy: &str| (format!("{oversub}"), policy.to_string());
        let (never_hit, never_wasted) = cells[&key("never")];
        let best_prob = dynamic::POLICIES
            .iter()
            .filter(|p| p.starts_with("prune@") || p.starts_with("gate@"))
            .map(|p| cells[&key(p)].0)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_prob > never_hit,
            "×{oversub}: best probabilistic policy ({best_prob}) must strictly beat \
             never-drop ({never_hit}) on hit-rate"
        );
        let least_wasted = dynamic::POLICIES
            .iter()
            .filter(|p| **p != "never")
            .map(|p| cells[&key(p)].1)
            .fold(f64::INFINITY, f64::min);
        assert!(
            least_wasted < never_wasted,
            "×{oversub}: some dropping policy must waste less than never-drop"
        );
    }
}
