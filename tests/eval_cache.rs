//! Equivalence suite for the allocation-free evaluator hot path.
//!
//! The PR-4 rewrite threads a shared [`DiscretizedScenario`] cache and
//! per-worker scratch (`EvalContext`) through every evaluator backend.
//! These tests pin the contract:
//!
//! * cached (shared context, warmed across many schedules) and uncached
//!   (fresh context per call) evaluation agree to ≤ 1e-12 for all four
//!   backends;
//! * the `*_into` kernels are bit-for-bit identical to the allocating
//!   operators;
//! * streamed study matrices remain bit-identical across 1, 2 and 4
//!   worker threads under every backend.

use robusched::core::StudyBuilder;
use robusched::platform::Scenario;
use robusched::randvar::{DiscreteRv, RvWorkspace, ScaledBeta};
use robusched::sched::{heft, random_schedule, Schedule};
use robusched::stochastic::{evaluator_by_name, EvalContext};

const BACKENDS: [&str; 4] = ["classic", "spelde", "dodin", "montecarlo"];

fn case() -> (Scenario, Vec<Schedule>) {
    let s = Scenario::paper_random(12, 3, 1.1, 8);
    let mut schedules: Vec<Schedule> = (0..6)
        .map(|i| random_schedule(&s.graph.dag, 3, 1000 + i))
        .collect();
    schedules.push(heft(&s));
    (s, schedules)
}

fn assert_rv_close(a: &DiscreteRv, b: &DiscreteRv, tol: f64, what: &str) {
    assert_eq!(a.points(), b.points(), "{what}: grid size");
    assert!((a.lo() - b.lo()).abs() <= tol, "{what}: lo");
    assert!((a.hi() - b.hi()).abs() <= tol, "{what}: hi");
    assert!(
        (a.mean() - b.mean()).abs() <= tol * a.mean().abs().max(1.0),
        "{what}: mean {} vs {}",
        a.mean(),
        b.mean()
    );
    assert!(
        (a.std_dev() - b.std_dev()).abs() <= tol * a.std_dev().abs().max(1.0),
        "{what}: std {} vs {}",
        a.std_dev(),
        b.std_dev()
    );
    for (i, (x, y)) in a.pdf_values().iter().zip(b.pdf_values().iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol * x.abs().max(1.0),
            "{what}: pdf[{i}] {x} vs {y}"
        );
    }
}

/// Cached (one shared context reused across every schedule) vs uncached
/// (fresh context per call) evaluation for all four backends.
#[test]
fn cached_matches_uncached_for_all_backends() {
    let (s, schedules) = case();
    for name in BACKENDS {
        let e = evaluator_by_name(name).unwrap();
        let mut shared = EvalContext::new(e.prepare(&s));
        for (k, sched) in schedules.iter().enumerate() {
            let cached = e.evaluate_with(&s, sched, &mut shared);
            let uncached = e.evaluate(&s, sched);
            assert_rv_close(&cached, &uncached, 1e-12, &format!("{name} schedule {k}"));
        }
    }
}

/// A context that was warmed on one scenario must still produce correct
/// results when handed a different scenario (private fallback path) —
/// including the dangerous case of a *same-shape* scenario that differs
/// only in uncertainty level or seed-derived costs, which a shape-only
/// cache check would wrongly accept.
#[test]
fn stale_context_falls_back_correctly() {
    let (s, schedules) = case();
    let different_shape = Scenario::paper_random(9, 2, 1.2, 99);
    let shape_sched = random_schedule(&different_shape.graph.dag, 2, 7);
    // Same dimensions as `s` (12 tasks, 3 machines, same seed → same graph
    // → same edge count), different uncertainty level.
    let same_shape_other_ul = Scenario::paper_random(12, 3, 1.4, 8);
    for name in BACKENDS {
        let e = evaluator_by_name(name).unwrap();
        // Prepared for `s`, then asked about scenarios it was not built for.
        let mut cx = EvalContext::new(e.prepare(&s));
        let via_stale = e.evaluate_with(&different_shape, &shape_sched, &mut cx);
        let fresh = e.evaluate(&different_shape, &shape_sched);
        assert_rv_close(&via_stale, &fresh, 1e-12, &format!("{name} stale-shape"));
        for (k, sched) in schedules.iter().enumerate() {
            let via_stale = e.evaluate_with(&same_shape_other_ul, sched, &mut cx);
            let fresh = e.evaluate(&same_shape_other_ul, sched);
            assert_rv_close(
                &via_stale,
                &fresh,
                1e-12,
                &format!("{name} same-shape-other-UL schedule {k}"),
            );
        }
        // And the warmed context still answers the original scenario.
        let back = e.evaluate_with(&s, &schedules[0], &mut cx);
        assert_rv_close(
            &back,
            &e.evaluate(&s, &schedules[0]),
            1e-12,
            &format!("{name} back to prepared scenario"),
        );
    }
}

/// `sum_into`/`max_into`/`min_into` against the allocating operators,
/// bit for bit, through a deliberately dirty workspace.
#[test]
fn into_kernels_bit_for_bit() {
    let x = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(20.0, 1.1));
    let y = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(15.0, 1.4));
    let z = DiscreteRv::from_dist(&ScaledBeta::paper_default(40.0, 1.2), 32);
    let mut ws = RvWorkspace::new();
    let mut out = DiscreteRv::point(0.0);
    // Interleave shapes and operations so every buffer gets resized and
    // reused before the final comparisons.
    let pairs = [(&x, &y), (&y, &z), (&z, &x), (&x, &y)];
    for (a, b) in pairs {
        a.sum_into(b, &mut ws, &mut out);
        let reference = a.sum(b);
        assert_eq!(out.lo().to_bits(), reference.lo().to_bits());
        assert_eq!(out.hi().to_bits(), reference.hi().to_bits());
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(out.pdf_values()), bits(reference.pdf_values()));
        assert_eq!(bits(out.cdf_values()), bits(reference.cdf_values()));

        a.max_into(b, &mut ws, &mut out);
        let reference = a.max(b);
        assert_eq!(bits(out.pdf_values()), bits(reference.pdf_values()));

        a.min_into(b, &mut ws, &mut out);
        let reference = a.min(b);
        assert_eq!(bits(out.pdf_values()), bits(reference.pdf_values()));
    }
}

/// Streamed study matrices must stay bit-identical across thread counts
/// for every backend after the rewrite (per-thread contexts must not leak
/// order-dependent state into the results). Monte-Carlo — the one backend
/// whose determinism rests on careful per-chunk seeding — runs with a
/// reduced realization budget so the suite stays fast; the determinism
/// contract is budget-independent.
#[test]
fn streamed_matrices_thread_invariant_per_backend() {
    use robusched::stochastic::{Evaluator, MonteCarloEvaluator};
    let scenario = Scenario::paper_random(10, 3, 1.1, 7);
    let make_eval = |name: &str| -> Box<dyn Evaluator> {
        if name == "montecarlo" {
            Box::new(MonteCarloEvaluator {
                realizations: 400,
                ..Default::default()
            })
        } else {
            evaluator_by_name(name).unwrap()
        }
    };
    for name in ["classic", "spelde", "dodin", "montecarlo"] {
        let run_with = |threads: usize| {
            StudyBuilder::new(&scenario)
                .random_schedules(130)
                .seed(3)
                .threads(threads)
                .evaluator(make_eval(name))
                .run()
                .unwrap()
        };
        let reference = run_with(1);
        let rp = reference.pearson_streamed();
        let rs = reference.spearman_streamed();
        for threads in [2usize, 4] {
            let got = run_with(threads);
            let gp = got.pearson_streamed();
            let gs = got.spearman_streamed();
            for i in 0..rp.dim() {
                for j in 0..rp.dim() {
                    assert_eq!(
                        rp.get(i, j).to_bits(),
                        gp.get(i, j).to_bits(),
                        "{name}: Pearson ({i},{j}) at {threads} threads"
                    );
                    assert_eq!(
                        rs.get(i, j).to_bits(),
                        gs.get(i, j).to_bits(),
                        "{name}: Spearman ({i},{j}) at {threads} threads"
                    );
                }
            }
        }
    }
}
