//! Integration tests of the `EvalService` serving contract (DESIGN.md §11):
//! bit-identical responses across every cache tier and worker count,
//! submission-order streaming, LRU bounds, and panic containment — plus
//! the NaN-safety regression tests of the `total_cmp` sweep.

use robusched::core::{
    EvalOutcome, EvalRequest, EvalService, MetricValues, ServiceConfig, ServiceError,
};
use robusched::platform::Scenario;
use robusched::sched::{heft, random_schedule};
use std::sync::Arc;

fn scenario(seed: u64) -> Arc<Scenario> {
    Arc::new(Scenario::paper_random(12, 4, 1.1, seed))
}

fn cold_metrics(req: &EvalRequest) -> MetricValues {
    // A throwaway single-worker service: nothing cached, pure cold path.
    let service = EvalService::new(ServiceConfig {
        workers: Some(1),
        ..Default::default()
    });
    service.evaluate(req.clone()).unwrap().metrics
}

#[test]
fn cache_hits_are_bit_identical_to_cold_evaluations() {
    // One shared service accumulates prepared state and results; every
    // response must equal a fresh service's cold answer bit for bit, for
    // every evaluator family (analytic, normal-propagation, Monte-Carlo).
    let service = EvalService::new(ServiceConfig {
        workers: Some(2),
        ..Default::default()
    });
    let s = scenario(3);
    for evaluator in ["classic", "spelde", "dodin", "mc"] {
        for sched_seed in 0..3u64 {
            let schedule = random_schedule(&s.graph.dag, s.machine_count(), sched_seed);
            let req = EvalRequest::new(s.clone(), schedule, evaluator);
            let cold = cold_metrics(&req);
            let first = service.evaluate(req.clone()).unwrap();
            let repeat = service.evaluate(req.clone()).unwrap();
            assert_eq!(first.metrics, cold, "{evaluator}: warm path diverged");
            assert_eq!(
                repeat.metrics, cold,
                "{evaluator}: result-cache hit diverged"
            );
            assert!(
                repeat.result_hit,
                "{evaluator}: repeat did not hit the result cache"
            );
        }
    }
}

#[test]
fn concurrent_clients_get_deterministic_results_across_worker_counts() {
    // 4 client threads × 12 requests each, against services with 1, 2 and
    // 4 workers: every (client, request) cell must be identical across
    // the three runs — batching, coalescing and scheduling order must
    // never leak into the numbers.
    let scenarios: Vec<Arc<Scenario>> = (0..3).map(|i| scenario(100 + i)).collect();
    let run = |workers: usize| -> Vec<Vec<MetricValues>> {
        let service = EvalService::new(ServiceConfig {
            workers: Some(workers),
            ..Default::default()
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|client| {
                    let service = &service;
                    let scenarios = &scenarios;
                    scope.spawn(move || {
                        (0..12u64)
                            .map(|i| {
                                let s =
                                    &scenarios[(client as usize + i as usize) % scenarios.len()];
                                let sched = random_schedule(
                                    &s.graph.dag,
                                    s.machine_count(),
                                    client * 64 + i,
                                );
                                let ev = ["classic", "spelde", "dodin"][i as usize % 3];
                                service
                                    .evaluate(EvalRequest::new(s.clone(), sched, ev))
                                    .unwrap()
                                    .metrics
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let single = run(1);
    assert_eq!(run(2), single, "2-worker service diverged from 1-worker");
    assert_eq!(run(4), single, "4-worker service diverged from 1-worker");
}

#[test]
fn responses_stream_in_submission_order() {
    let service = EvalService::new(ServiceConfig {
        workers: Some(4),
        ..Default::default()
    });
    let s = scenario(7);
    let expected: Vec<MetricValues> = (0..16u64)
        .map(|i| {
            let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
            cold_metrics(&EvalRequest::new(s.clone(), sched, "classic"))
        })
        .collect();
    for i in 0..16u64 {
        let sched = random_schedule(&s.graph.dag, s.machine_count(), i);
        service.submit(EvalRequest::new(s.clone(), sched, "classic"));
    }
    for (i, want) in expected.iter().enumerate() {
        let (ticket, result) = service.next_response();
        assert_eq!(ticket, i as u64, "response overtook the stream");
        assert_eq!(&result.unwrap().metrics, want);
    }
}

#[test]
fn scenario_cache_respects_its_lru_bound() {
    let service = EvalService::new(ServiceConfig {
        workers: Some(1),
        scenario_capacity: 4,
        ..Default::default()
    });
    let scenarios: Vec<Arc<Scenario>> = (0..10).map(|i| scenario(200 + i)).collect();
    let mut first_pass: Vec<EvalOutcome> = Vec::new();
    for s in &scenarios {
        let req = EvalRequest::new(s.clone(), heft(s), "classic");
        first_pass.push(service.evaluate(req).unwrap());
    }
    assert!(
        service.cached_scenarios() <= 4,
        "LRU bound violated: {} entries cached",
        service.cached_scenarios()
    );
    let stats = service.stats();
    assert!(
        stats.evictions >= 6,
        "expected ≥6 evictions, saw {}",
        stats.evictions
    );
    assert_eq!(stats.scenario_misses, 10);

    // An evicted scenario re-prepares and still answers bit-identically.
    let req = EvalRequest::new(scenarios[0].clone(), heft(&scenarios[0]), "spelde");
    let refreshed = service
        .evaluate(EvalRequest::new(
            scenarios[0].clone(),
            heft(&scenarios[0]),
            "classic",
        ))
        .unwrap();
    assert_eq!(refreshed.metrics, first_pass[0].metrics);
    service.evaluate(req).unwrap();
    assert!(service.cached_scenarios() <= 4);
}

#[test]
fn unknown_evaluator_is_rejected_without_killing_the_service() {
    let service = EvalService::new(ServiceConfig::default());
    let s = scenario(1);
    let bad = EvalRequest::new(s.clone(), heft(&s), "no-such-evaluator");
    assert!(matches!(
        service.evaluate(bad),
        Err(ServiceError::UnknownEvaluator(_))
    ));
    // The service still serves real requests afterwards.
    let ok = service.evaluate(EvalRequest::new(s.clone(), heft(&s), "classic"));
    assert!(ok.is_ok());
}

// ---------------------------------------------------------------------------
// NaN-safety regressions (the `partial_cmp(..).unwrap()` → `total_cmp` sweep)
// ---------------------------------------------------------------------------

#[test]
fn descriptive_stats_do_not_panic_on_nan_inputs() {
    // Pre-sweep, `quantile` sorted with `partial_cmp(..).unwrap()` and a
    // single NaN sample aborted the whole study. Now NaN sorts to the top
    // and propagates as a NaN quantile instead.
    let xs = [1.0, f64::NAN, 0.5, 2.0];
    let q = robusched::stats::quantile(&xs, 0.99);
    assert!(q.is_nan() || q.is_finite());
    let _ = robusched::stats::quantile(&xs, 0.25);
    let _ = robusched::stats::descriptive::median(&xs);
}

#[test]
fn correlations_do_not_panic_on_nan_inputs() {
    // `spearman`'s rank sort used `partial_cmp(..).unwrap()` and died on
    // the first NaN. The coefficients are allowed to be NaN; the calls
    // must return. (`Ecdf::new` and `CostMatrix::from_rows` are *guarded*
    // entry points with documented validation panics — they are the
    // correct behaviour and not part of this regression.)
    let xs = [0.3, f64::NAN, 1.7, 0.9];
    let ys = [1.0, 2.0, 3.0, 4.0];
    let _ = robusched::stats::pearson(&xs, &ys);
    let _ = robusched::stats::spearman(&xs, &ys);
}

#[test]
fn rank_ordering_survives_nan_priorities() {
    // The list-scheduling priority sort is the hot path the sweep fixed:
    // a NaN upward rank (from any upstream numerical accident) used to
    // abort in `sort_by(partial_cmp.unwrap())`. The ordering is still a
    // permutation — NaNs land at a deterministic position.
    let ranks = [3.0, f64::NAN, 1.0, 2.0, f64::NAN];
    let order = robusched::sched::rank::tasks_by_decreasing_rank(&ranks);
    let mut seen = order.clone();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3, 4], "not a permutation: {order:?}");
    // Deterministic: same input, same order.
    assert_eq!(
        order,
        robusched::sched::rank::tasks_by_decreasing_rank(&ranks)
    );
}
