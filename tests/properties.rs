//! Property-based tests across the workspace (proptest).
//!
//! These exercise invariants with randomized inputs: graph generators,
//! schedule validity, the discrete-RV calculus, the eager executor and the
//! metric definitions.

use proptest::prelude::*;
use robusched::dag::generators::{self, LayeredRandomConfig};
use robusched::platform::{Scenario, UncertaintyModel};
use robusched::randvar::{DiscreteRv, Dist, ScaledBeta};
use robusched::sched::{det_makespan, random_schedule, EagerPlan};
use robusched::stats::pearson;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layered_random_always_acyclic_and_connected(
        n in 2usize..60,
        cap in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let cfg = LayeredRandomConfig {
            n,
            max_in_degree: Some(cap),
            ..Default::default()
        };
        let tg = generators::layered_random(&cfg, seed);
        prop_assert!(tg.dag.is_acyclic());
        for v in 1..n {
            prop_assert!(tg.dag.in_degree(v) >= 1 && tg.dag.in_degree(v) <= cap);
        }
        prop_assert!(tg.task_work.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn random_schedules_always_valid(
        n in 2usize..40,
        m in 1usize..6,
        seed in 0u64..500,
    ) {
        let cfg = LayeredRandomConfig { n, ..Default::default() };
        let tg = generators::layered_random(&cfg, seed);
        let sched = random_schedule(&tg.dag, m, seed ^ 0xABCD);
        prop_assert!(sched.validate(&tg.dag).is_ok());
        prop_assert!(EagerPlan::new(&tg.dag, &sched).is_ok());
    }

    #[test]
    fn rv_sum_moments_additive(
        w1 in 1.0f64..100.0,
        w2 in 1.0f64..100.0,
        ul in 1.01f64..2.0,
    ) {
        let a = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w1, ul));
        let b = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w2, ul));
        let s = a.sum(&b);
        let exact_mean = a.mean() + b.mean();
        prop_assert!((s.mean() - exact_mean).abs() / exact_mean < 1e-3,
            "mean {} vs {}", s.mean(), exact_mean);
        let exact_var = a.variance() + b.variance();
        prop_assert!((s.variance() - exact_var).abs() / exact_var.max(1e-12) < 0.05,
            "var {} vs {}", s.variance(), exact_var);
        // Support is the Minkowski sum.
        prop_assert!((s.lo() - (a.lo() + b.lo())).abs() < 1e-9);
        prop_assert!((s.hi() - (a.hi() + b.hi())).abs() < 1e-9);
    }

    #[test]
    fn rv_max_dominates_operands(
        w1 in 1.0f64..50.0,
        w2 in 1.0f64..50.0,
        ul in 1.05f64..1.8,
    ) {
        let a = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w1, ul));
        let b = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w2, ul));
        let m = a.max(&b);
        // E[max] ≥ max(E[a], E[b]) − numerical tolerance.
        prop_assert!(m.mean() >= a.mean().max(b.mean()) - 1e-6);
        // CDF of max is dominated by both operand CDFs. The tolerance
        // covers the grid renormalization of the product density (the
        // violation is bounded by the quadrature mass error, ~1e-3).
        for q in [0.25, 0.5, 0.75] {
            let x = m.quantile(q);
            prop_assert!(m.cdf_at(x) <= a.cdf_at(x) + 1e-2);
            prop_assert!(m.cdf_at(x) <= b.cdf_at(x) + 1e-2);
        }
    }

    #[test]
    fn rv_cdf_monotone_and_bounded(
        w in 1.0f64..100.0,
        ul in 1.01f64..2.0,
    ) {
        let a = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w, ul));
        let mut prev = -1e-12;
        for i in 0..=50 {
            let x = a.lo() + a.span() * i as f64 / 50.0;
            let f = a.cdf_at(x);
            prop_assert!(f >= prev - 1e-9, "CDF decreased at {x}");
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn entropy_shift_invariant(
        w in 1.0f64..50.0,
        ul in 1.1f64..2.0,
        shift in -100.0f64..100.0,
    ) {
        let a = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w, ul));
        let b = a.shift(shift);
        prop_assert!((a.entropy() - b.entropy()).abs() < 1e-9);
    }

    #[test]
    fn quantile_cdf_roundtrip(
        w in 1.0f64..50.0,
        ul in 1.1f64..2.0,
        p in 0.05f64..0.95,
    ) {
        let a = DiscreteRv::from_dist_default(&ScaledBeta::paper_default(w, ul));
        let x = a.quantile(p);
        prop_assert!((a.cdf_at(x) - p).abs() < 0.02, "cdf({x}) = {} vs {p}", a.cdf_at(x));
    }

    #[test]
    fn det_makespan_at_least_critical_path(
        n in 3usize..25,
        m in 1usize..5,
        seed in 0u64..200,
    ) {
        let s = Scenario::paper_random(n, m, 1.1, seed);
        let sched = random_schedule(&s.graph.dag, m, seed);
        let ms = det_makespan(&s, &sched);
        // Lower bound: the critical path with per-task MINIMUM costs and
        // zero communication.
        let cp = s.graph.dag.critical_path_length(
            |v| s.costs.min_cost(v),
            |_| 0.0,
        );
        prop_assert!(ms >= cp - 1e-9, "makespan {ms} below CP bound {cp}");
        // And at least the total work divided by machines.
        let total_min: f64 = (0..n).map(|v| s.costs.min_cost(v)).sum();
        prop_assert!(ms >= total_min / m as f64 - 1e-9);
    }

    #[test]
    fn pearson_always_in_unit_interval(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 + 1.0).collect();
        let r = pearson(&xs, &ys);
        prop_assert!(r.abs() <= 1.0);
        // Perfect affine relation ⇒ |r| = 1 (unless degenerate).
        if xs.iter().any(|&x| x != xs[0]) {
            prop_assert!((r - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn uncertainty_model_support_scales(
        w in 0.1f64..1e4,
        ul in 1.0f64..3.0,
    ) {
        let u = UncertaintyModel::paper(ul);
        let d = u.weight_dist(w);
        let (lo, hi) = d.support();
        prop_assert!((lo - w).abs() < 1e-12);
        prop_assert!((hi - ul * w).abs() < 1e-9);
        prop_assert!(d.mean() >= lo - 1e-12 && d.mean() <= hi + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn classic_mean_bounded_by_support(
        n in 3usize..15,
        seed in 0u64..100,
    ) {
        let s = Scenario::paper_random(n, 3, 1.1, seed);
        let sched = random_schedule(&s.graph.dag, 3, seed ^ 0x55);
        let rv = robusched::stochastic::evaluate_classic(&s, &sched);
        prop_assert!(rv.lo() <= rv.mean() && rv.mean() <= rv.hi());
        prop_assert!(rv.std_dev() <= rv.span());
        // Deterministic execution with min durations equals the support low
        // end (all Beta variables start at their minimum). The narrow-span
        // shift optimization in `DiscreteRv::sum` replaces unresolvably thin
        // operands by their mean, so the match is to grid resolution, not
        // exact.
        let det = det_makespan(&s, &sched);
        prop_assert!((rv.lo() - det).abs() / det < 1e-3, "lo {} vs det {}", rv.lo(), det);
    }
}
