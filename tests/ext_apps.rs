//! Smoke-scale run of the structured-application (`ext-apps`) study:
//! exercises every generator class end to end through `run_case` and locks
//! in the schema of the emitted CSV artifacts.

use robusched::dag::apps::AppClass;
use robusched::experiments::ext::apps;
use robusched::experiments::RunOptions;

#[test]
fn ext_apps_smoke_run_emits_per_class_csvs() {
    let dir = std::env::temp_dir().join(format!("robusched-ext-apps-{}", std::process::id()));
    let opts = RunOptions {
        scale: 0.004,
        out_dir: Some(dir.clone()),
        seed: 5,
        threads: None,
    };
    let a = apps::run(&opts).expect("study failed");

    // One aggregate per class, in the canonical order.
    assert_eq!(a.classes.len(), AppClass::ALL.len());
    for (c, class) in a.classes.iter().zip(AppClass::ALL) {
        assert_eq!(c.class, class);
        assert_eq!(c.cases, 4);
        assert!(
            c.largest_tasks >= 75,
            "{}: {}",
            class.name(),
            c.largest_tasks
        );
    }

    // Per-class matrices: one pearson + one spearman CSV each, 8 metric
    // labels → 9 CSV lines (header + 8 rows).
    for class in AppClass::ALL {
        for kind in ["pearson", "spearman"] {
            let path = dir.join(format!("ext_apps_{}_{kind}.csv", class.name()));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 9, "{}", path.display());
            assert!(lines[0].contains("avg_makespan"));
            assert!(lines[0].contains("rel_prob"));
        }
    }

    // Cross-class summary: fixed header + one row per class.
    let summary = std::fs::read_to_string(dir.join("ext_apps_summary.csv")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines[0], apps::SUMMARY_HEADER);
    assert_eq!(lines.len(), 1 + AppClass::ALL.len());
    for (line, class) in lines[1..].iter().zip(AppClass::ALL) {
        assert!(line.starts_with(class.name()));
        // Every numeric field parses.
        for field in line.split(',').skip(1) {
            field
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad field {field}"));
        }
    }

    let _ = std::fs::remove_dir_all(dir);
}
