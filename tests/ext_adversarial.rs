//! Smoke-scale runs of the adversarial-search (`ext-adversarial`) study
//! plus the committed counterexample gallery: locks the
//! `ext_adversarial_summary.csv` schema, pins bit-identity of the summary
//! *and* the gallery across worker-thread counts and repeat runs, checks
//! the streamed objectives against brute-force two-pass recomputation, and
//! replays every committed gallery entry from its WfCommons file —
//! verifying the paper-cluster correlation really drops below 0.9 on
//! found scenarios while the un-searched start scenarios stay above it.

use robusched::core::adversarial::CLUSTER_THRESHOLD;
use robusched::core::{
    metric_index, pearson_matrix, spearman_matrix, ClusterDeficit, Objective, RankGap,
    StudyBuilder, METRIC_LABELS,
};
use robusched::dag::parsers::wfcommons::parse_wfcommons;
use robusched::experiments::ext::adversarial;
use robusched::experiments::RunOptions;
use robusched::platform::Scenario;
use robusched::stochastic::scenario_fingerprint;
use std::path::Path;

fn smoke_opts(threads: Option<usize>) -> RunOptions {
    RunOptions {
        scale: 0.01,
        out_dir: None,
        seed: 11,
        threads,
    }
}

#[test]
fn ext_adversarial_smoke_run_locks_summary_schema() {
    let dir =
        std::env::temp_dir().join(format!("robusched-ext-adversarial-{}", std::process::id()));
    let opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..smoke_opts(None)
    };
    let a = adversarial::run(&opts).expect("study failed");

    let summary = std::fs::read_to_string(dir.join("ext_adversarial_summary.csv")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines[0], adversarial::SUMMARY_HEADER);
    assert_eq!(lines.len(), 1 + a.chains.len());
    let columns = adversarial::SUMMARY_HEADER.split(',').count();
    for (line, chain) in lines[1..].iter().zip(&a.chains) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), columns, "{line}");
        assert_eq!(fields[0], chain.objective);
        assert_eq!(fields[1].parse::<usize>().unwrap(), chain.chain);
        assert!(fields[2] == "replayable" || fields[2] == "full");
        // The scenario knobs replay: shortest-roundtrip floats and seeds.
        assert_eq!(
            fields[7].parse::<f64>().unwrap().to_bits(),
            chain.best.speed_cov.to_bits()
        );
        assert_eq!(
            fields[8].parse::<f64>().unwrap().to_bits(),
            chain.best.ul.to_bits()
        );
        assert_eq!(fields[9].parse::<u64>().unwrap(), chain.best.seed);
        // Search accounting is sane.
        let evals: usize = fields[12].parse().unwrap();
        let accepted: usize = fields[13].parse().unwrap();
        assert!(evals >= 1 && accepted < evals, "{line}");
        // The best never scores below the start.
        let start_score: f64 = fields[14].parse().unwrap();
        let best_score: f64 = fields[15].parse().unwrap();
        assert!(best_score >= start_score, "{line}");
    }
    // Gallery entries (if any at this scale) are listed with their files.
    for chain in &a.chains {
        if let Some(file) = &chain.gallery_file {
            assert!(dir.join("ext_adversarial_gallery").join(file).is_file());
        }
    }

    let _ = std::fs::remove_dir_all(dir);
}

/// Reads every artifact under `dir` into a sorted (name, content) list.
fn artifact_snapshot(dir: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = path.strip_prefix(dir).unwrap().display().to_string();
                out.push((name, std::fs::read_to_string(&path).unwrap()));
            }
        }
    }
    out.sort();
    out
}

/// Summary *and* gallery must be bit-identical for any `--threads` value
/// and across repeat runs — whole chains are sharded by index with
/// per-chain derived seeds, and every objective evaluation is a
/// single-threaded study, so scheduling nondeterminism never reaches the
/// artifacts.
#[test]
fn ext_adversarial_artifacts_are_reproducible() {
    let mut base: Option<Vec<(String, String)>> = None;
    for (run, threads) in [(0, 1), (1, 1), (2, 2), (3, 4)] {
        let dir = std::env::temp_dir().join(format!(
            "robusched-ext-adversarial-rep{}-{}",
            run,
            std::process::id()
        ));
        let opts = RunOptions {
            out_dir: Some(dir.clone()),
            ..smoke_opts(Some(threads))
        };
        adversarial::run(&opts).expect("study failed");
        let snap = artifact_snapshot(&dir);
        match &base {
            None => base = Some(snap),
            Some(b) => assert_eq!(b, &snap, "artifacts differ at {threads} threads"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The streamed objectives must agree with a brute-force two-pass
/// recomputation over the buffered metric rows to ≤ 1e-12: the rank-gap
/// score against the two-pass Spearman matrix, and the cluster
/// correlations against the two-pass Pearson matrix.
#[test]
fn streamed_objectives_match_two_pass_recomputation() {
    let scenario = Scenario::paper_random(12, 4, 1.1, 23);
    let (schedules, seed) = (32, 17);

    // Brute force: the same study with buffered rows, two-pass matrices.
    let res = StudyBuilder::new(&scenario)
        .random_schedules(schedules)
        .seed(seed)
        .threads(1)
        .evaluator_named("classic")
        .reservoir_capacity(schedules)
        .buffer_metrics(true)
        .run()
        .unwrap();
    let rows = res.random.as_deref().unwrap();
    assert_eq!(rows.len(), schedules);
    let pearson = pearson_matrix(rows);
    let spearman = spearman_matrix(rows);
    let (i_std, i_lat, i_abs, i_rel) = (
        metric_index("makespan_std"),
        metric_index("avg_lateness"),
        metric_index("abs_prob"),
        metric_index("rel_prob"),
    );

    let rank = RankGap.evaluate(&scenario, schedules, seed).unwrap();
    let streamed_spearman = 1.0 - rank.score;
    assert!(
        (streamed_spearman - spearman.get(i_std, i_rel)).abs() <= 1e-12,
        "rank-gap Spearman drifted: streamed {} vs two-pass {}",
        streamed_spearman,
        spearman.get(i_std, i_rel)
    );

    let cluster = ClusterDeficit.evaluate(&scenario, schedules, seed).unwrap();
    for (streamed, j) in [
        (cluster.p_std_lateness, i_lat),
        (cluster.p_std_absprob, i_abs),
    ] {
        assert!(
            (streamed - pearson.get(i_std, j)).abs() <= 1e-12,
            "cluster Pearson ({}, {}) drifted: streamed {} vs two-pass {}",
            METRIC_LABELS[i_std],
            METRIC_LABELS[j],
            streamed,
            pearson.get(i_std, j)
        );
    }
    assert!(
        (cluster.score - (1.0 - cluster.p_std_lateness.min(cluster.p_std_absprob))).abs() <= 1e-15
    );
}

/// The committed full-scale gallery: at least 3 distinct counterexample
/// scenarios, each of which — replayed from its WfCommons file and the
/// gallery CSV's knobs alone — reproduces its committed cluster
/// correlations bit for bit and breaks the 0.9 threshold, while every
/// un-searched start scenario in the committed summary stays above it.
#[test]
fn committed_gallery_replays_and_breaks_the_cluster() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let gallery_dir = root.join("results/ext_adversarial_gallery");
    let text = std::fs::read_to_string(gallery_dir.join("gallery.csv"))
        .expect("committed gallery present");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(adversarial::GALLERY_HEADER));

    let mut fingerprints = Vec::new();
    for line in lines {
        let f: Vec<&str> = line.split(',').collect();
        assert_eq!(f.len(), adversarial::GALLERY_HEADER.split(',').count());
        let (file, machines, speed_cov, ul) = (
            f[0],
            f[3].parse::<usize>().unwrap(),
            f[4].parse::<f64>().unwrap(),
            f[5].parse::<f64>().unwrap(),
        );
        let (scenario_seed, schedules, study_seed) = (
            f[6].parse::<u64>().unwrap(),
            f[7].parse::<usize>().unwrap(),
            f[8].parse::<u64>().unwrap(),
        );
        let (p_lat, p_abs) = (f[9].parse::<f64>().unwrap(), f[10].parse::<f64>().unwrap());

        let json = std::fs::read_to_string(gallery_dir.join(file)).expect("gallery file present");
        let trace = parse_wfcommons(&json, file).expect("gallery file parses");
        let report = adversarial::replay_gallery_entry(
            &trace,
            machines,
            speed_cov,
            ul,
            scenario_seed,
            schedules,
            study_seed,
        )
        .expect("replay study runs");

        // Bit-exact reproduction of the committed correlations …
        assert_eq!(
            report.p_std_lateness.to_bits(),
            p_lat.to_bits(),
            "{file}: ρ(σ, lateness) did not replay"
        );
        assert_eq!(
            report.p_std_absprob.to_bits(),
            p_abs.to_bits(),
            "{file}: ρ(σ, 1−A) did not replay"
        );
        // … and a genuine, non-degenerate cluster break.
        assert!(report.score.is_finite(), "{file}: degenerate scenario");
        assert!(
            report.p_std_lateness.min(report.p_std_absprob) < CLUSTER_THRESHOLD,
            "{file}: cluster survives on replay"
        );

        fingerprints.push(scenario_fingerprint(&Scenario::from_trace(
            &trace,
            machines,
            speed_cov,
            ul,
            scenario_seed,
        )));
    }
    assert!(
        fingerprints.len() >= 3,
        "gallery must hold at least 3 counterexamples, found {}",
        fingerprints.len()
    );
    let mut unique = fingerprints.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        fingerprints.len(),
        "gallery scenarios must be pairwise distinct"
    );

    // Control: the un-searched starts in the committed summary stay above
    // the threshold (the search finds genuine counterexamples, not noise).
    let summary =
        std::fs::read_to_string(root.join("results/ext_adversarial_summary.csv")).unwrap();
    let mut lines = summary.lines();
    assert_eq!(lines.next(), Some(adversarial::SUMMARY_HEADER));
    let mut starts = 0;
    for line in lines {
        let f: Vec<&str> = line.split(',').collect();
        if f[0] != "cluster-deficit" {
            continue;
        }
        starts += 1;
        let start_score: f64 = f[14].parse().unwrap();
        assert!(
            start_score < 1.0 - CLUSTER_THRESHOLD,
            "un-searched start already breaks the cluster: {line}"
        );
    }
    assert!(starts >= 3, "summary must carry the cluster-deficit chains");
}
