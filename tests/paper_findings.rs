//! Integration: the paper's headline findings, asserted at reduced scale.
//!
//! Each test encodes one claim of §VI–§VIII so a regression anywhere in
//! the stack that would change the *science* fails loudly.

#![allow(deprecated)] // pins the legacy run_case surface on purpose

use robusched::core::{run_case, StudyConfig, METRIC_LABELS};
use robusched::platform::Scenario;
use robusched::randvar::{ConcatBeta, DiscreteRv, Normal};

fn idx(name: &str) -> usize {
    METRIC_LABELS.iter().position(|&l| l == name).unwrap()
}

fn study(n: usize, m: usize, ul: f64, seed: u64, k: usize) -> robusched::core::CaseResult {
    let s = Scenario::paper_random(n, m, ul, seed);
    run_case(
        &s,
        &StudyConfig {
            random_schedules: k,
            seed: seed ^ 0xF00D,
            with_heuristics: true,
            ..Default::default()
        },
    )
}

#[test]
fn finding_1_the_equivalence_cluster() {
    // §VII: "the standard deviation, the differential entropy, the average
    // lateness and the absolute probabilistic metric" are near-linearly
    // related.
    let res = study(20, 4, 1.1, 1, 400);
    let p = &res.pearson;
    let cluster = [
        "makespan_std",
        "makespan_entropy",
        "avg_lateness",
        "abs_prob",
    ];
    for a in cluster {
        for b in cluster {
            if a != b {
                assert!(
                    p.get(idx(a), idx(b)) > 0.85,
                    "{a} ~ {b} = {}",
                    p.get(idx(a), idx(b))
                );
            }
        }
    }
}

#[test]
fn finding_2_makespan_correlates_with_robustness() {
    // §VI/Fig. 6: E(M) vs σ_M ≈ 0.77 — "short schedules are more robust".
    let res = study(20, 4, 1.1, 2, 400);
    let r = res.pearson.get(idx("avg_makespan"), idx("makespan_std"));
    assert!(
        (0.3..1.0).contains(&r),
        "E(M) ~ σ_M should be clearly positive, got {r}"
    );
}

#[test]
fn finding_3_slack_is_not_robustness() {
    // §VII: "Maximizing the slack seems indeed be a conflicting objective
    // with the robustness" — the (inverted-slack, σ) correlation is weak or
    // negative, never strongly positive.
    let res = study(20, 4, 1.1, 3, 400);
    let r = res.pearson.get(idx("avg_slack"), idx("makespan_std"));
    assert!(
        r < 0.5,
        "inverted slack should not follow the robustness cluster, got {r}"
    );
}

#[test]
fn finding_4_relative_prob_needs_normalization() {
    // Fig. 6: raw 1−R(γ) correlates weakly with σ_M (0.148 in the paper);
    // §VII: dividing by the makespan lifts it to ~0.998.
    let s = Scenario::paper_random(20, 4, 1.1, 4);
    let res = run_case(
        &s,
        &StudyConfig {
            random_schedules: 400,
            seed: 11,
            with_heuristics: false,
            ..Default::default()
        },
    );
    let raw = res.pearson.get(idx("rel_prob"), idx("makespan_std"));
    let normalized = robusched::experiments::figs::fig6::rel_by_makespan_correlation(&res.random);
    assert!(
        normalized > raw + 0.1,
        "normalization should strengthen the correlation: raw {raw}, normalized {normalized}"
    );
    assert!(normalized > 0.8, "normalized correlation {normalized}");
}

#[test]
fn finding_5_heuristics_in_the_good_corner() {
    // §VII: "the three heuristics (BIL, HEFT and Hyb.BMCT) give always the
    // best makespan and often the best standard deviation".
    let res = study(25, 4, 1.1, 5, 500);
    let mut ms: Vec<f64> = res.random.iter().map(|m| m.expected_makespan).collect();
    ms.sort_by(f64::total_cmp);
    let q05 = ms[ms.len() / 20];
    let mut std: Vec<f64> = res.random.iter().map(|m| m.makespan_std).collect();
    std.sort_by(f64::total_cmp);
    let std_q25 = std[ms.len() / 4];
    for (name, m) in &res.heuristics {
        assert!(
            m.expected_makespan <= q05 * 1.02,
            "{name} makespan {} not in the top 5% ({q05})",
            m.expected_makespan
        );
        assert!(
            m.makespan_std <= std_q25 * 1.3,
            "{name} σ {} far from the best quartile ({std_q25})",
            m.makespan_std
        );
    }
}

#[test]
fn finding_6_clt_explains_the_equivalence() {
    // §VII/Fig. 8: a few self-sums of even a pathological distribution are
    // near-Gaussian — the root cause of the metric equivalence.
    let base = DiscreteRv::from_dist(&ConcatBeta::paper_special(), 128);
    let s5 = base.self_sum(5);
    let n5 = DiscreteRv::from_dist(&Normal::new(s5.mean(), s5.std_dev()), 256);
    assert!(
        s5.ks_distance(&n5) < 0.02,
        "5 sums: {}",
        s5.ks_distance(&n5)
    );
    let s10 = base.self_sum(10);
    let n10 = DiscreteRv::from_dist(&Normal::new(s10.mean(), s10.std_dev()), 256);
    assert!(
        s10.ks_distance(&n10) < 0.008,
        "10 sums: {}",
        s10.ks_distance(&n10)
    );
}

#[test]
fn finding_7_max_of_iid_concentrates() {
    // §VII's argument for schedule a) of Fig. 9: the maximum of many i.i.d.
    // variables has smaller and smaller spread.
    let one =
        DiscreteRv::from_dist_default(&robusched::randvar::ScaledBeta::paper_default(10.0, 1.5));
    let mut acc = one.clone();
    let mut prev_std = acc.std_dev();
    for _ in 0..4 {
        acc = acc.max(&one);
        let s = acc.std_dev();
        assert!(
            s <= prev_std + 1e-9,
            "max should not spread: {s} > {prev_std}"
        );
        prev_std = s;
    }
    assert!(prev_std < 0.8 * one.std_dev());
}
