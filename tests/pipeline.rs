//! Integration: the full pipeline from generation to correlation matrices.

#![allow(deprecated)] // pins the legacy run_case surface on purpose

use robusched::core::{compute_metrics, run_case, MetricOptions, StudyConfig, METRIC_LABELS};
use robusched::platform::Scenario;
use robusched::sched::{bil, cpop, det_makespan, heft, hyb_bmct, random_schedule};
use robusched::stochastic::evaluate_classic;

#[test]
fn heuristics_valid_across_families_and_sizes() {
    use robusched::dag::generators::{cholesky, gaussian_elimination};
    let scenarios = vec![
        Scenario::paper_random(10, 3, 1.01, 1),
        Scenario::paper_random(30, 8, 1.1, 2),
        Scenario::paper_real_app(cholesky(6), 4, 1.1, 3),
        Scenario::paper_real_app(gaussian_elimination(8), 8, 1.01, 4),
    ];
    for s in &scenarios {
        for (name, sched) in [
            ("heft", heft(s)),
            ("bil", bil(s)),
            ("bmct", hyb_bmct(s)),
            ("cpop", cpop(s)),
        ] {
            assert!(
                sched.validate(&s.graph.dag).is_ok(),
                "{name} invalid on {}",
                s.graph.name
            );
            let ms = det_makespan(s, &sched);
            assert!(ms.is_finite() && ms > 0.0);
        }
    }
}

#[test]
fn metrics_well_defined_for_many_random_schedules() {
    let s = Scenario::paper_random(15, 3, 1.1, 9);
    for k in 0..50 {
        let sched = random_schedule(&s.graph.dag, 3, k);
        let rv = evaluate_classic(&s, &sched);
        let m = compute_metrics(&s, &sched, &rv, &MetricOptions::default());
        assert!(m.expected_makespan > 0.0, "schedule {k}");
        assert!(m.makespan_std > 0.0, "UL > 1 must spread the makespan");
        assert!((0.0..=1.0).contains(&m.prob_absolute));
        assert!((0.0..=1.0).contains(&m.prob_relative));
        assert!(m.avg_lateness >= 0.0);
        // Slack of an eager schedule is bounded by the makespan.
        assert!(m.avg_slack <= m.expected_makespan + 1e-9);
        // E(M) of the analytic RV is at least the deterministic makespan.
        let det = det_makespan(&s, &sched);
        assert!(
            m.expected_makespan >= det - 1e-9,
            "E {} < det {det}",
            m.expected_makespan
        );
    }
}

#[test]
fn study_produces_full_matrix_and_heuristics() {
    let s = Scenario::paper_random(12, 3, 1.1, 77);
    let res = run_case(
        &s,
        &StudyConfig {
            random_schedules: 150,
            seed: 5,
            with_heuristics: true,
            with_cpop: true,
            ..Default::default()
        },
    );
    assert_eq!(res.random.len(), 150);
    assert_eq!(res.heuristics.len(), 4);
    assert_eq!(res.pearson.dim(), METRIC_LABELS.len());
    // Matrix is symmetric with unit diagonal.
    for i in 0..res.pearson.dim() {
        assert_eq!(res.pearson.get(i, i), 1.0);
        for j in 0..res.pearson.dim() {
            assert_eq!(res.pearson.get(i, j), res.pearson.get(j, i));
            assert!(res.pearson.get(i, j).abs() <= 1.0);
        }
    }
}

#[test]
fn expected_makespan_dominates_deterministic_for_heuristics() {
    let s = Scenario::paper_random(20, 4, 1.2, 3);
    for sched in [heft(&s), bil(&s), hyb_bmct(&s)] {
        let det = det_makespan(&s, &sched);
        let rv = evaluate_classic(&s, &sched);
        assert!(rv.mean() >= det);
        // And bounded by UL times the deterministic value (loose envelope:
        // every duration grows at most UL×, order fixed).
        assert!(rv.hi() <= det * s.uncertainty.ul * 1.5);
    }
}

#[test]
fn larger_ul_spreads_the_makespan() {
    let mk = |ul: f64| {
        let s = Scenario::paper_random(15, 4, ul, 12);
        let sched = heft(&s);
        evaluate_classic(&s, &sched).std_dev()
    };
    let s_small = mk(1.01);
    let s_big = mk(1.3);
    assert!(
        s_big > 3.0 * s_small,
        "UL 1.3 std {s_big} should dwarf UL 1.01 std {s_small}"
    );
}
