//! Smoke-scale run of the fault-injection (`ext-faults`) study plus the
//! committed full-scale artifacts: locks the `ext_faults_summary.csv` and
//! `ext_faults_ranking.csv` schemas, pins bit-identity of both across
//! worker-thread counts, and asserts the headline results on the committed
//! CSVs — in every faulty cell some recovery policy strictly beats
//! `abandon` on goodput, and the paper's σ/lateness/1−A robustness cluster
//! still ranks schedules under machine faults.

use robusched::experiments::ext::faults;
use robusched::experiments::RunOptions;
use std::collections::HashMap;

fn smoke_opts(threads: Option<usize>) -> RunOptions {
    RunOptions {
        scale: 0.01,
        out_dir: None,
        seed: 11,
        threads,
    }
}

#[test]
fn ext_faults_smoke_run_locks_summary_schema() {
    let dir = std::env::temp_dir().join(format!("robusched-ext-faults-{}", std::process::id()));
    let opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..smoke_opts(None)
    };
    let d = faults::run(&opts).expect("study failed");
    assert_eq!(
        d.cells.len(),
        faults::OVERSUB.len() * faults::FAULTS.len() * faults::RECOVERY.len()
    );

    let summary = std::fs::read_to_string(dir.join("ext_faults_summary.csv")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines[0], faults::SUMMARY_HEADER);
    assert_eq!(lines.len(), 1 + d.cells.len());
    let columns = faults::SUMMARY_HEADER.split(',').count();
    for (line, cell) in lines[1..].iter().zip(&d.cells) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), columns);
        assert_eq!(fields[0].parse::<f64>().unwrap(), cell.oversub);
        assert_eq!(fields[1], cell.fault);
        assert_eq!(fields[2], cell.recovery);
        // Conservation under the reap policy (nothing is gate-rejected):
        // every admitted instance is dropped or completed.
        let instances: usize = fields[3].parse().unwrap();
        let admitted: usize = fields[4].parse().unwrap();
        let dropped: usize = fields[5].parse().unwrap();
        let completed: usize = fields[6].parse().unwrap();
        assert_eq!(admitted, instances, "{line}");
        assert_eq!(dropped + completed, admitted, "{line}");
        // Rates and fractions are proper.
        for field in &fields[8..13] {
            let v: f64 = field.parse().unwrap();
            assert!(v.is_finite() && v >= 0.0, "bad rate {field} in {line}");
        }
        // Fault-free rows carry zero fault counters.
        if cell.fault == "none" {
            assert_eq!(&fields[13..], &["0", "0", "0"], "{line}");
        }
    }

    let ranking = std::fs::read_to_string(dir.join("ext_faults_ranking.csv")).unwrap();
    let rlines: Vec<&str> = ranking.lines().collect();
    assert_eq!(rlines[0], faults::RANKING_HEADER);
    assert_eq!(rlines.len(), 1 + d.ranking.len());
    for line in &rlines[1..] {
        let (_, rho) = line.split_once(',').unwrap();
        let rho: f64 = rho.parse().unwrap();
        assert!((-1.0..=1.0).contains(&rho), "{line}");
    }

    let _ = std::fs::remove_dir_all(dir);
}

/// Both CSVs must be bit-identical for any `--threads` value and across
/// repeat runs — cells are sharded by index with per-group derived seeds
/// and the ranking phase is sequential, so scheduling nondeterminism never
/// reaches the artifacts.
#[test]
fn ext_faults_summary_is_reproducible() {
    let base = faults::run(&smoke_opts(Some(1))).unwrap();
    for threads in [1, 2, 4] {
        let again = faults::run(&smoke_opts(Some(threads))).unwrap();
        assert_eq!(
            faults::summary_csv(&base),
            faults::summary_csv(&again),
            "summary differs at {threads} threads"
        );
        assert_eq!(
            faults::ranking_csv(&base),
            faults::ranking_csv(&again),
            "ranking differs at {threads} threads"
        );
    }
}

/// The committed full-scale artifact carries the study's first headline:
/// in every faulty cell (oversubscription × nonzero fault regime), some
/// recovery policy strictly beats `abandon` on goodput — giving up is
/// never the best answer to a machine fault.
#[test]
fn committed_artifact_shows_recovery_beats_abandon() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/ext_faults_summary.csv"
    );
    let text = std::fs::read_to_string(path).expect("committed artifact present");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(faults::SUMMARY_HEADER));

    // (oversub, fault, recovery) -> goodput
    let mut cells: HashMap<(String, String, String), f64> = HashMap::new();
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), faults::SUMMARY_HEADER.split(',').count());
        assert_eq!(fields[3], "400", "committed artifact must be full-scale");
        cells.insert(
            (
                fields[0].to_string(),
                fields[1].to_string(),
                fields[2].to_string(),
            ),
            fields[9].parse().unwrap(),
        );
    }
    assert_eq!(
        cells.len(),
        faults::OVERSUB.len() * faults::FAULTS.len() * faults::RECOVERY.len()
    );

    for &oversub in &faults::OVERSUB {
        for &fault in faults::FAULTS.iter().filter(|f| **f != "none") {
            let key = |r: &str| (format!("{oversub}"), fault.to_string(), r.to_string());
            let abandon = cells[&key("abandon")];
            let best = faults::RECOVERY
                .iter()
                .filter(|r| **r != "abandon")
                .map(|r| cells[&key(r)])
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                best > abandon,
                "×{oversub}/{fault}: best recovery ({best}) must strictly beat \
                 abandon ({abandon}) on goodput"
            );
        }
    }
}

/// The committed ranking artifact carries the second headline: the paper's
/// robustness cluster (σ, lateness, 1 − A) correlates positively with the
/// faulted deadline miss-rate — offline rankings survive machine faults.
#[test]
fn committed_ranking_shows_cluster_survives_faults() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/ext_faults_ranking.csv"
    );
    let text = std::fs::read_to_string(path).expect("committed artifact present");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(faults::RANKING_HEADER));

    let mut rho: HashMap<String, f64> = HashMap::new();
    for line in lines {
        let (metric, r) = line.split_once(',').unwrap();
        rho.insert(metric.to_string(), r.parse().unwrap());
    }
    for metric in ["makespan_std", "avg_lateness", "abs_prob"] {
        assert!(
            rho[metric] > 0.0,
            "{metric} must rank with the faulted miss-rate (got {})",
            rho[metric]
        );
    }
}
