//! Integration suite for the batched Monte-Carlo engine: the sampling-table
//! equivalence, the scalar-vs-SoA contract, thread-count determinism of all
//! three estimators, and the antithetic closed-form invariant.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use robusched::platform::{CostMatrix, Platform, Scenario, UncertaintyKind, UncertaintyModel};
use robusched::randvar::{derive_seed, Dist};
use robusched::sched::{random_schedule, EagerPlan};
use robusched::stochastic::montecarlo::{BLOCK, CHUNK};
use robusched::stochastic::{
    mc_makespans, mc_makespans_prepared, McConfig, McEstimator, SamplingTables,
};
use robusched_dag::generators;

/// The shared sampling table must agree with the direct (root-found)
/// quantile of the base shape to 1e-9 across the practical probability
/// range — the tentpole equivalence pin, exercised through the same
/// `SamplingTables` the engine uses.
#[test]
fn sampling_table_matches_direct_quantile() {
    let scenario = Scenario::paper_random(10, 3, 1.1, 5);
    let tables = SamplingTables::new(&scenario);
    let table = tables.base().expect("stochastic scenario");
    let shape = scenario.uncertainty.base_shape().unwrap();
    let mut worst = 0.0f64;
    for i in 0..=4000 {
        let u = 0.001 + 0.998 * i as f64 / 4000.0;
        worst = worst.max((table.quantile(u) - shape.quantile(u)).abs());
    }
    // Tails, geometrically spaced down to 1e-9 from both ends.
    for k in 1..=27 {
        let d = 10f64.powf(-9.0 + 8.0 * (k - 1) as f64 / 26.0);
        for u in [d, 1.0 - d] {
            worst = worst.max((table.quantile(u) - shape.quantile(u)).abs());
        }
    }
    assert!(worst <= 1e-9, "table-vs-direct quantile error {worst:e}");
}

/// Reimplements the engine's documented draw contract scalar-style — chunk
/// RNGs from `derive_seed(seed, chunk)`, slot-major block fills in the
/// plan's topological order (incoming edges before their task, zero-span
/// slots skipped) — and replays each realization individually through
/// `EagerPlan::execute`. The batched engine must reproduce it bit for bit.
#[test]
fn scalar_reference_matches_soa_engine_bitwise() {
    let scenario = Scenario::paper_random(14, 4, 1.2, 9);
    let schedule = random_schedule(&scenario.graph.dag, 4, 33);
    let seed = 0xFEED;
    // Covers a full chunk, a partial chunk and a partial block.
    let realizations = CHUNK + 2 * BLOCK + 77;

    let engine = mc_makespans(
        &scenario,
        &schedule,
        &McConfig {
            realizations,
            seed,
            threads: Some(1),
            estimator: McEstimator::Standard,
        },
    );

    // ---- Scalar reference. ----
    let dag = &scenario.graph.dag;
    let n = scenario.task_count();
    let plan = EagerPlan::new(dag, &schedule).unwrap();
    let tables = SamplingTables::new(&scenario);
    let table = tables.base().unwrap();
    let ul = scenario.uncertainty.ul;
    // (row, lo, span) in canonical draw order; row < n is a task, else an
    // edge at row − n.
    let mut program: Vec<(usize, f64, f64)> = Vec::new();
    let mut task_lo = vec![0.0f64; n];
    let mut edge_lo = vec![0.0f64; dag.edge_count()];
    for (v, lo) in task_lo.iter_mut().enumerate() {
        *lo = scenario.det_task_cost(v, schedule.machine_of(v));
    }
    for (u, v, e) in dag.edge_triples() {
        edge_lo[e] = scenario.det_comm_cost(e, schedule.machine_of(u), schedule.machine_of(v));
    }
    for &v in plan.topo_order() {
        for &(_, e) in dag.preds(v) {
            let span = (ul - 1.0) * edge_lo[e];
            if span > 0.0 {
                program.push((n + e, edge_lo[e], span));
            }
        }
        let span = (scenario.task_ul(v) - 1.0) * task_lo[v];
        if span > 0.0 {
            program.push((v, task_lo[v], span));
        }
    }

    let mut reference = Vec::with_capacity(realizations);
    let mut durations = vec![0.0f64; (n + dag.edge_count()) * BLOCK];
    for (row, &lo) in task_lo.iter().chain(edge_lo.iter()).enumerate() {
        durations[row * BLOCK..(row + 1) * BLOCK].fill(lo);
    }
    let mut start = 0usize;
    while start < realizations {
        let chunk_len = CHUNK.min(realizations - start);
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, (start / CHUNK) as u64));
        let mut block_start = 0usize;
        while block_start < chunk_len {
            let lanes = BLOCK.min(chunk_len - block_start);
            for &(row, lo, span) in &program {
                for r in 0..lanes {
                    let bits = rng.next_u64() >> 11;
                    durations[row * BLOCK + r] = lo + span * table.quantile_u53(bits);
                }
            }
            for r in 0..lanes {
                let exec = plan.execute(
                    dag,
                    |v| durations[v * BLOCK + r],
                    |e, _, _| durations[(n + e) * BLOCK + r],
                );
                reference.push(exec.makespan);
            }
            block_start += lanes;
        }
        start += chunk_len;
    }

    assert_eq!(engine.len(), reference.len());
    for (i, (a, b)) in engine.iter().zip(reference.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "realization {i}: {a} vs {b}");
    }
}

/// Every estimator must produce a bit-identical stream for any worker
/// count — the fixed-chunk seeding contract.
#[test]
fn all_estimators_deterministic_across_1_2_4_threads() {
    let scenario = Scenario::paper_random(12, 3, 1.1, 21);
    let schedule = random_schedule(&scenario.graph.dag, 3, 7);
    let tables = SamplingTables::new(&scenario);
    for estimator in [
        McEstimator::Standard,
        McEstimator::Antithetic,
        McEstimator::Stratified,
    ] {
        let run = |threads: usize| {
            mc_makespans_prepared(
                &scenario,
                &schedule,
                &McConfig {
                    realizations: 3 * CHUNK / 2,
                    seed: 4242,
                    threads: Some(threads),
                    estimator,
                },
                &tables,
            )
        };
        let one = run(1);
        for threads in [2, 4] {
            let multi = run(threads);
            assert_eq!(
                one, multi,
                "{estimator:?}: stream changed at {threads} threads"
            );
        }
    }
}

/// Antithetic mean preservation on a closed-form case: with the *uniform*
/// uncertainty family, `Q(u) + Q(1−u) = 1` up to table rounding, so on a
/// single-machine chain every antithetic pair's average makespan equals the
/// exact expected makespan — not just in the limit, but pair by pair.
#[test]
fn antithetic_pairs_preserve_the_mean_exactly_on_uniform_chain() {
    let tasks = 5;
    let tg = generators::chain(tasks);
    let costs = CostMatrix::from_rows(tasks, 1, vec![10.0, 20.0, 5.0, 12.5, 8.0]);
    let scenario = Scenario::new(
        tg,
        Platform::paper_default(1),
        costs,
        UncertaintyModel {
            ul: 1.5,
            kind: UncertaintyKind::Uniform,
        },
    );
    let schedule = robusched::sched::Schedule::new(vec![0; tasks], vec![(0..tasks).collect()]);
    // Exact mean: Σ (w + (UL−1)·w/2) — uniform midpoint per task.
    let exact: f64 = [10.0, 20.0, 5.0, 12.5, 8.0]
        .iter()
        .map(|w| w + 0.25 * w)
        .sum();
    let ms = mc_makespans(
        &scenario,
        &schedule,
        &McConfig {
            realizations: 2 * BLOCK,
            seed: 77,
            threads: Some(1),
            estimator: McEstimator::Antithetic,
        },
    );
    for pair in ms.chunks(2) {
        let avg = 0.5 * (pair[0] + pair[1]);
        assert!(
            (avg - exact).abs() < 1e-9 * exact,
            "pair average {avg} vs exact {exact}"
        );
    }
    // And therefore the whole estimate is exact too.
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    assert!((mean - exact).abs() < 1e-9 * exact);
}

/// The estimators are all unbiased: on a moderate budget their means agree
/// with each other within Monte-Carlo noise, and the variance-reduced
/// streams genuinely differ from the plain one (they are different
/// estimators, not aliases).
#[test]
fn estimators_agree_on_the_mean_but_differ_in_stream() {
    let scenario = Scenario::paper_random(12, 3, 1.1, 5);
    let schedule = random_schedule(&scenario.graph.dag, 3, 11);
    let tables = SamplingTables::new(&scenario);
    let run = |estimator: McEstimator| {
        mc_makespans_prepared(
            &scenario,
            &schedule,
            &McConfig {
                realizations: 20_000,
                seed: 9,
                threads: Some(2),
                estimator,
            },
            &tables,
        )
    };
    let plain = run(McEstimator::Standard);
    let anti = run(McEstimator::Antithetic);
    let strat = run(McEstimator::Stratified);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let m0 = mean(&plain);
    assert!((mean(&anti) - m0).abs() / m0 < 0.01, "antithetic mean off");
    assert!((mean(&strat) - m0).abs() / m0 < 0.01, "stratified mean off");
    assert_ne!(plain, anti);
    assert_ne!(plain, strat);
}
