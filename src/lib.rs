//! # robusched
//!
//! Facade crate for the `robusched` workspace — a full reproduction of
//! *"A Comparison of Robustness Metrics for Scheduling DAGs on Heterogeneous
//! Systems"* (Canon & Jeannot, HeteroPar'07 / CLUSTER 2007 workshops).
//!
//! This crate re-exports the public API of every subsystem so downstream
//! users depend on a single crate:
//!
//! * [`numeric`] — FFT, convolution, integration, splines, special functions;
//! * [`randvar`] — continuous distributions and the discretized RV calculus;
//! * [`dag`] — task-graph structure and generators;
//! * [`platform`] — heterogeneous platform and uncertainty models;
//! * [`sched`] — schedules and heuristics (HEFT, BIL, Hyb.BMCT, CPOP, random);
//! * [`stochastic`] — makespan-distribution evaluation (classic, Dodin,
//!   Spelde, Monte-Carlo);
//! * [`stats`] — correlation and descriptive statistics;
//! * [`core`] — the robustness metrics, the comparison-study pipeline, and
//!   the batched, cache-deduplicated [`core::EvalService`];
//! * [`dynamic`] — arrival-driven (online) simulation: event-driven
//!   executor with deadlines, task dropping, and probabilistic pruning;
//! * [`experiments`] — figure-by-figure reproduction harness.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use robusched_core as core;
pub use robusched_dag as dag;
pub use robusched_dynamic as dynamic;
pub use robusched_experiments as experiments;
pub use robusched_numeric as numeric;
pub use robusched_platform as platform;
pub use robusched_randvar as randvar;
pub use robusched_sched as sched;
pub use robusched_stats as stats;
pub use robusched_stochastic as stochastic;

/// Workspace version, for `--version` style reporting from examples.
///
/// Every member crate inherits `[workspace.package] version` from the root
/// `Cargo.toml`, so this facade constant is the version of the whole
/// workspace, not just of the facade crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_matches_workspace_package_version() {
        // `[workspace.package]` pins 0.1.0 for every member; the facade
        // constant must track it (a mismatch means a manifest stopped
        // inheriting `version.workspace = true`).
        assert_eq!(super::VERSION, "0.1.0");
    }
}
