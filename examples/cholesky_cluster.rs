//! Domain scenario: scheduling a tiled Cholesky factorization on a small
//! heterogeneous cluster, and *choosing a schedule by robustness* rather
//! than by makespan alone.
//!
//! The paper's motivation (§I): on dynamic platforms, a schedule that is
//! two percent longer but far more stable can be the better choice. This
//! example evaluates the four heuristics and a tuned random pool on the
//! Cholesky graph and prints a robustness-aware recommendation, including
//! a cross-validation of all three analytic evaluators against
//! Monte-Carlo.
//!
//! ```text
//! cargo run --release --example cholesky_cluster [matrix_size]
//! ```

use robusched::core::{compute_metrics, MetricOptions, MetricValues};
use robusched::dag::generators::cholesky;
use robusched::platform::Scenario;
use robusched::randvar::derive_seed;
use robusched::sched::{bil, cpop, heft, hyb_bmct, random_schedule, Schedule};
use robusched::stochastic::{
    evaluate_classic, evaluate_dodin, evaluate_spelde, mc_makespans, McConfig,
};

fn main() {
    let b: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let graph = cholesky(b);
    println!(
        "tiled Cholesky, matrix size {b}: {} tasks, {} edges",
        graph.task_count(),
        graph.edge_count()
    );
    let scenario = Scenario::paper_real_app(graph, 4, 1.1, 2024);

    // Candidate schedules: the heuristics plus the best-of-200 random.
    let mut candidates: Vec<(String, Schedule)> = vec![
        ("HEFT".into(), heft(&scenario)),
        ("BIL".into(), bil(&scenario)),
        ("Hyb.BMCT".into(), hyb_bmct(&scenario)),
        ("CPOP".into(), cpop(&scenario)),
    ];
    let best_random = (0..200)
        .map(|i| random_schedule(&scenario.graph.dag, 4, derive_seed(55, i)))
        .min_by(|a, b| {
            robusched::sched::det_makespan(&scenario, a)
                .total_cmp(&robusched::sched::det_makespan(&scenario, b))
        })
        .unwrap();
    candidates.push(("best-random".into(), best_random));

    // Score: expected makespan, broken by σ (the paper's conclusion —
    // σ is the one metric worth computing).
    let mut table: Vec<(String, MetricValues)> = Vec::new();
    for (name, sched) in &candidates {
        let rv = evaluate_classic(&scenario, sched);
        table.push((
            name.clone(),
            compute_metrics(&scenario, sched, &rv, &MetricOptions::default()),
        ));
    }
    println!(
        "\n{:>12}  {:>9}  {:>8}  {:>8}  {:>8}",
        "schedule", "E(M)", "σ_M", "L", "R₂"
    );
    for (name, m) in &table {
        println!(
            "{:>12}  {:>9.2}  {:>8.4}  {:>8.4}  {:>8.4}",
            name, m.expected_makespan, m.makespan_std, m.avg_lateness, m.late_fraction
        );
    }

    let pick = table
        .iter()
        .min_by(|a, b| {
            (a.1.expected_makespan + 2.0 * a.1.makespan_std)
                .total_cmp(&(b.1.expected_makespan + 2.0 * b.1.makespan_std))
        })
        .unwrap();
    println!(
        "\nrecommendation (min E + 2σ): {} (E = {:.2}, σ = {:.4})",
        pick.0, pick.1.expected_makespan, pick.1.makespan_std
    );

    // Evaluator cross-validation on the recommended schedule.
    let sched = &candidates.iter().find(|(n, _)| *n == pick.0).unwrap().1;
    let classic = evaluate_classic(&scenario, sched);
    let spelde = evaluate_spelde(&scenario, sched);
    let dodin = evaluate_dodin(&scenario, sched, 64);
    let mc = mc_makespans(
        &scenario,
        sched,
        &McConfig {
            realizations: 30_000,
            ..Default::default()
        },
    );
    let mc_mean = mc.iter().sum::<f64>() / mc.len() as f64;
    let mc_std = {
        let v = mc
            .iter()
            .map(|x| (x - mc_mean) * (x - mc_mean))
            .sum::<f64>()
            / mc.len() as f64;
        v.sqrt()
    };
    println!("\nevaluator agreement on the recommended schedule:");
    println!(
        "  classic:     mean {:.3}, std {:.4}",
        classic.mean(),
        classic.std_dev()
    );
    println!(
        "  Spelde CLT:  mean {:.3}, std {:.4}",
        spelde.mean, spelde.std_dev
    );
    println!(
        "  Dodin:       mean {:.3}, std {:.4}",
        dodin.mean(),
        dodin.std_dev()
    );
    println!("  Monte-Carlo: mean {mc_mean:.3}, std {mc_std:.4}  (30k realizations)");
}
