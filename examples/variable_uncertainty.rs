//! Variable per-task uncertainty: when the makespan stops being a good
//! robustness proxy — and σ-HEFT starts paying off.
//!
//! The paper's §VIII: with a constant UL the spread of every duration is
//! proportional to its mean, so minimizing the makespan indirectly
//! minimizes σ. Give half the tasks a wild UL and the other half an almost
//! deterministic one, and the two objectives decouple. This example
//! demonstrates both effects on one instance.
//!
//! ```text
//! cargo run --release --example variable_uncertainty
//! ```

use robusched::platform::Scenario;
use robusched::randvar::derive_seed;
use robusched::sched::{heft, sigma_heft};
use robusched::stochastic::evaluate_classic;

fn main() {
    let base = Scenario::paper_random(25, 4, 1.1, 2026);
    let n = base.task_count();

    // Regime 1: the paper's constant UL.
    let heft_const = heft(&base);
    let sig_const = sigma_heft(&base, 2.0);
    let rv_h1 = evaluate_classic(&base, &heft_const);
    let rv_s1 = evaluate_classic(&base, &sig_const);

    // Regime 2: variable UL — half the tasks nearly exact, half wild.
    let uls: Vec<f64> = (0..n)
        .map(|v| {
            if derive_seed(2026, v as u64).is_multiple_of(2) {
                1.6
            } else {
                1.01
            }
        })
        .collect();
    let wild = uls.iter().filter(|&&u| u > 1.5).count();
    let varied = base.clone().with_per_task_ul(uls);
    let heft_var = heft(&varied);
    let sig_var = sigma_heft(&varied, 2.0);
    let rv_h2 = evaluate_classic(&varied, &heft_var);
    let rv_s2 = evaluate_classic(&varied, &sig_var);

    println!("constant UL = 1.1 (spread ∝ mean):");
    println!(
        "  HEFT   : E = {:.2}, σ = {:.4}",
        rv_h1.mean(),
        rv_h1.std_dev()
    );
    println!(
        "  σ-HEFT : E = {:.2}, σ = {:.4}   (κ = 2)",
        rv_s1.mean(),
        rv_s1.std_dev()
    );
    println!("\nvariable UL ({wild}/{n} tasks at UL = 1.6, rest at 1.01):");
    println!(
        "  HEFT   : E = {:.2}, σ = {:.4}",
        rv_h2.mean(),
        rv_h2.std_dev()
    );
    println!(
        "  σ-HEFT : E = {:.2}, σ = {:.4}",
        rv_s2.mean(),
        rv_s2.std_dev()
    );
    let gain = 100.0 * (1.0 - rv_s2.std_dev() / rv_h2.std_dev());
    println!(
        "\nσ-HEFT changes the makespan by {:+.1}% and the spread by {:-.1}% in the variable regime.",
        100.0 * (rv_s2.mean() / rv_h2.mean() - 1.0),
        -gain
    );
}
