//! Mini correlation study: the paper's §VI protocol on one case, printed
//! as the combined Pearson matrix (this is Fig. 3/4/5 at example scale).
//!
//! ```text
//! cargo run --release --example metric_correlations [n_tasks] [machines] [schedules]
//! ```

use robusched::core::{run_case, StudyConfig, METRIC_LABELS};
use robusched::platform::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(500);

    let scenario = Scenario::paper_random(n, m, 1.01, 11);
    let res = run_case(
        &scenario,
        &StudyConfig {
            random_schedules: k,
            seed: 3,
            with_heuristics: true,
            with_cpop: true,
            ..Default::default()
        },
    );

    println!(
        "Pearson correlations over {k} random schedules ({n} tasks, {m} machines, UL = 1.01)\n"
    );
    // Header.
    print!("{:>18}", "");
    for l in METRIC_LABELS {
        print!("{:>10}", &l[..l.len().min(9)]);
    }
    println!();
    for (i, li) in METRIC_LABELS.iter().enumerate() {
        print!("{li:>18}");
        for j in 0..METRIC_LABELS.len() {
            if i == j {
                print!("{:>10}", "—");
            } else {
                print!("{:>10.3}", res.pearson.get(i, j));
            }
        }
        println!();
    }

    println!("\nheuristics vs the random cloud:");
    let best = res
        .random
        .iter()
        .map(|mv| mv.expected_makespan)
        .fold(f64::INFINITY, f64::min);
    for (name, mv) in &res.heuristics {
        println!(
            "  {name:>9}: E(M) = {:.2} ({:+.1}% vs best random), σ_M = {:.4}",
            mv.expected_makespan,
            100.0 * (mv.expected_makespan / best - 1.0),
            mv.makespan_std
        );
    }
}
