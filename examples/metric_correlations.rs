//! Mini correlation study: the paper's §VI protocol on one case through
//! the streaming `StudyBuilder` engine, printed as the combined Pearson
//! matrix (this is Fig. 3/4/5 at example scale). No metric row is ever
//! buffered: the matrix comes from the Welford co-moment accumulator and
//! the best random makespan from a streaming sink.
//!
//! ```text
//! cargo run --release --example metric_correlations [n_tasks] [machines] [schedules]
//! ```

use robusched::core::{MetricValues, StudyBuilder, METRIC_LABELS};
use robusched::platform::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(500);

    let scenario = Scenario::paper_random(n, m, 1.01, 11);
    let mut best = f64::INFINITY;
    let mut track_best = |_: usize, mv: &MetricValues| {
        best = best.min(mv.expected_makespan);
    };
    let res = StudyBuilder::new(&scenario)
        .random_schedules(k)
        .seed(3)
        .heuristics(&["HEFT", "BIL", "Hyb.BMCT", "CPOP"])
        .sink(&mut track_best)
        .run()
        .expect("study failed");
    let pearson = res.pearson_streamed();

    println!(
        "Pearson correlations over {k} random schedules ({n} tasks, {m} machines, UL = 1.01)\n"
    );
    // Header.
    print!("{:>18}", "");
    for l in METRIC_LABELS {
        print!("{:>10}", &l[..l.len().min(9)]);
    }
    println!();
    for (i, li) in METRIC_LABELS.iter().enumerate() {
        print!("{li:>18}");
        for j in 0..METRIC_LABELS.len() {
            if i == j {
                print!("{:>10}", "—");
            } else {
                print!("{:>10.3}", pearson.get(i, j));
            }
        }
        println!();
    }

    println!("\nheuristics vs the random cloud:");
    for (name, mv) in &res.heuristics {
        println!(
            "  {name:>9}: E(M) = {:.2} ({:+.1}% vs best random), σ_M = {:.4}",
            mv.expected_makespan,
            100.0 * (mv.expected_makespan / best - 1.0),
            mv.makespan_std
        );
    }
}
