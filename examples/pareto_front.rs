//! Explore the (makespan, robustness) Pareto front of one instance, then
//! diagnose the extreme schedules with task criticality indices.
//!
//! The paper's future work asks what happens "near the Pareto front"; this
//! example walks there with the biobjective local search and shows how the
//! critical-path probability mass concentrates on the robust end.
//!
//! ```text
//! cargo run --release --example pareto_front [n_tasks] [machines]
//! ```

use robusched::core::{pareto_search, SearchConfig};
use robusched::platform::Scenario;
use robusched::stochastic::criticality_indices;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let scenario = Scenario::paper_random(n, m, 1.2, 77);
    println!("scenario: {n} tasks, {m} machines, UL = 1.2\n");

    let front = pareto_search(
        &scenario,
        &SearchConfig {
            iterations: 4_000,
            sweeps: 6,
            seed: 9,
        },
    );
    println!("(E(M), σ_M) Pareto archive — {} points:", front.len());
    println!("{:>10}  {:>8}", "E(M)", "σ_M");
    for p in &front {
        println!("{:>10.3}  {:>8.4}", p.expected_makespan, p.makespan_std);
    }

    // Diagnose both ends of the front.
    let fastest = &front[0];
    let steadiest = front.last().unwrap();
    let crit_fast = criticality_indices(&scenario, &fastest.schedule, 20_000, 1);
    let crit_steady = criticality_indices(&scenario, &steadiest.schedule, 20_000, 1);
    let spread = |c: &[f64]| {
        let hot = c.iter().filter(|&&p| p > 0.5).count();
        let mass: f64 = c.iter().sum();
        (hot, mass)
    };
    let (hot_f, mass_f) = spread(&crit_fast);
    let (hot_s, mass_s) = spread(&crit_steady);
    println!("\ncriticality diagnosis (20k realizations):");
    println!(
        "  fastest schedule : {hot_f} tasks critical >50% of the time, total criticality mass {mass_f:.1}"
    );
    println!(
        "  steadiest schedule: {hot_s} tasks critical >50% of the time, total criticality mass {mass_s:.1}"
    );
    println!(
        "\ntrade-off: the steadiest point costs {:+.1}% makespan for {:-.1}% of the spread.",
        100.0 * (steadiest.expected_makespan / fastest.expected_makespan - 1.0),
        100.0 * (1.0 - steadiest.makespan_std / fastest.makespan_std)
    );
}
