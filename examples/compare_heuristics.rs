//! Compare HEFT, BIL, Hyb.BMCT and CPOP against a cloud of random
//! schedules — the paper's §VI observation that makespan-centric
//! heuristics "give always the best makespan and often the best standard
//! deviation".
//!
//! ```text
//! cargo run --release --example compare_heuristics [n_tasks] [machines]
//! ```

use robusched::core::{compute_metrics, MetricOptions, MetricValues};
use robusched::platform::Scenario;
use robusched::randvar::derive_seed;
use robusched::sched::{bil, cpop, heft, hyb_bmct, random_schedule, Schedule};
use robusched::stochastic::evaluate_classic;

fn eval(scenario: &Scenario, sched: &Schedule) -> MetricValues {
    let rv = evaluate_classic(scenario, sched);
    compute_metrics(scenario, sched, &rv, &MetricOptions::default())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let m: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let scenario = Scenario::paper_random(n, m, 1.1, 7);
    println!("scenario: {n} tasks on {m} machines, UL = 1.1\n");

    // The heuristic schedules.
    let rows: Vec<(String, MetricValues)> = vec![
        ("HEFT".into(), eval(&scenario, &heft(&scenario))),
        ("BIL".into(), eval(&scenario, &bil(&scenario))),
        ("Hyb.BMCT".into(), eval(&scenario, &hyb_bmct(&scenario))),
        ("CPOP".into(), eval(&scenario, &cpop(&scenario))),
    ];

    // A cloud of random schedules for context.
    let k = 400;
    let mut best_ms = f64::INFINITY;
    let mut best_std = f64::INFINITY;
    let mut mean_ms = 0.0;
    for i in 0..k {
        let sched = random_schedule(&scenario.graph.dag, m, derive_seed(1234, i));
        let mv = eval(&scenario, &sched);
        best_ms = best_ms.min(mv.expected_makespan);
        best_std = best_std.min(mv.makespan_std);
        mean_ms += mv.expected_makespan / k as f64;
    }

    println!(
        "{:>9}  {:>10}  {:>9}  {:>9}  {:>9}  {:>9}",
        "schedule", "E(M)", "σ_M", "L", "A(δ)", "S̄"
    );
    for (name, mv) in &rows {
        println!(
            "{:>9}  {:>10.2}  {:>9.4}  {:>9.4}  {:>9.4}  {:>9.2}",
            name,
            mv.expected_makespan,
            mv.makespan_std,
            mv.avg_lateness,
            mv.prob_absolute,
            mv.avg_slack
        );
    }
    println!(
        "\nrandom schedules ({k} samples): mean E(M) = {mean_ms:.2}, best E(M) = {best_ms:.2}, best σ_M = {best_std:.4}"
    );
    let best_h = rows
        .iter()
        .map(|(_, m)| m.expected_makespan)
        .fold(f64::INFINITY, f64::min);
    println!(
        "heuristics reach {:.1}% of the best random makespan",
        100.0 * best_h / best_ms
    );
}
