//! Quickstart: schedule a random task graph with HEFT, evaluate its
//! makespan *distribution*, and print every robustness metric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use robusched::core::{compute_metrics, MetricOptions};
use robusched::platform::Scenario;
use robusched::sched::{det_makespan, heft};
use robusched::stochastic::{evaluate_classic, mc_makespans, McConfig};

fn main() {
    // A 30-task layered random DAG on 8 unrelated machines, with every
    // duration uncertain on [w, 1.1·w] (Beta(2,5) profile) — the paper's
    // standard setting.
    let scenario = Scenario::paper_random(30, 8, 1.1, 42);
    println!(
        "scenario: {} tasks, {} edges, {} machines, UL = {}",
        scenario.task_count(),
        scenario.graph.edge_count(),
        scenario.machine_count(),
        scenario.uncertainty.ul
    );

    // Schedule with HEFT on the deterministic (minimum) durations.
    let schedule = heft(&scenario);
    println!(
        "HEFT deterministic makespan: {:.2}",
        det_makespan(&scenario, &schedule)
    );

    // The makespan under uncertainty is a random variable; evaluate its
    // distribution analytically (sum = convolution, max = CDF product).
    let makespan = evaluate_classic(&scenario, &schedule);
    println!(
        "analytic makespan distribution: support [{:.2}, {:.2}], mean {:.2}, std {:.3}",
        makespan.lo(),
        makespan.hi(),
        makespan.mean(),
        makespan.std_dev()
    );

    // Cross-check with Monte-Carlo.
    let samples = mc_makespans(
        &scenario,
        &schedule,
        &McConfig {
            realizations: 20_000,
            ..Default::default()
        },
    );
    let mc_mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("Monte-Carlo mean over 20k realizations: {mc_mean:.2}");

    // All §IV robustness metrics in one call.
    let m = compute_metrics(&scenario, &schedule, &makespan, &MetricOptions::default());
    println!("\nrobustness metrics (paper §IV):");
    println!("  expected makespan   E(M)  = {:.3}", m.expected_makespan);
    println!("  makespan std-dev    σ_M   = {:.4}", m.makespan_std);
    println!("  differential entropy h(M) = {:.4}", m.makespan_entropy);
    println!("  average slack       S̄     = {:.3}", m.avg_slack);
    println!("  slack std-dev       σ_S   = {:.3}", m.slack_std);
    println!("  average lateness    L     = {:.4}", m.avg_lateness);
    println!("  absolute prob.      A(δ)  = {:.4}", m.prob_absolute);
    println!("  relative prob.      R(γ)  = {:.4}", m.prob_relative);
    println!("  late fraction       R₂    = {:.4}", m.late_fraction);
}
