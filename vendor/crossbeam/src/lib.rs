//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is used by the workspace; since Rust 1.63 the
//! standard library ships scoped threads, so this crate is a thin adapter
//! that keeps crossbeam's call shape (`scope(|s| …)` returning a
//! `Result`, spawn closures receiving a `&Scope` for nested spawning).

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 API shape.

    use std::any::Any;

    /// Error payload of a panicked child thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; allows spawning threads that borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// it can spawn nested threads (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; joins all spawned threads before returning.
    ///
    /// Returns `Err` with the panic payload if any child thread panicked
    /// (crossbeam semantics; `std::thread::scope` would resume the unwind).
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(data.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
