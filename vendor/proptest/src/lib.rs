//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(…)]`, `arg in strategy`
//!   parameters, and bodies that use `?` on `Result<_, TestCaseError>`;
//! * range strategies for the primitive numeric types;
//! * [`collection::vec`] for `Vec` strategies with a length strategy;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`] and [`TestCaseError::fail`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), no persistence files, and the case stream
//! is a fixed deterministic function of the test's module path and name.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A hard failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// Upstream distinguishes rejections from failures; here both abort
    /// the test with the reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Produces random values for one `arg in strategy` binding.
pub trait Strategy {
    /// Type of the produced values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy yielding one fixed value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for collection strategies (upstream `SizeRange`).
    /// Holds an inclusive-lo, exclusive-hi interval.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each case draws a length from `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! What `use proptest::prelude::*` brings in.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};

    pub mod prop {
        //! The `prop::` namespace of the upstream prelude.
        pub use crate::collection;
    }
}

/// Deterministic per-test RNG; distinct tests get well-separated streams.
pub fn rng_for(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Hard-fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first so clippy's neg_cmp_op_on_partial_ord never sees a
        // negated comparison expression from the caller.
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Hard-fails the current proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Hard-fails the current proptest case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0.0f64..1.0, n in 1usize..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case_idx in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::new_value(&($strat), &mut rng);
                    )*
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )*
                        s
                    };
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            { $body }
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case_idx + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_within_bounds(x in -5.0f64..5.0, n in 1usize..10, b in 0u8..3) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(b < 3);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn question_mark_works(x in 0.0f64..1.0) {
            Ok::<(), String>(()).map_err(TestCaseError::fail)?;
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1.0);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let va = (0.0f64..1.0).new_value(&mut a);
        let vb = (0.0f64..1.0).new_value(&mut b);
        assert_eq!(va, vb);
    }
}
