//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`;
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` (SplitMix64 expansion);
//! * [`Rng`] — `gen_range` over integer and float ranges, `gen_bool`;
//! * [`rngs::StdRng`] — xoshiro256++ (Blackman & Vigna), seeded like the
//!   real `StdRng` via `seed_from_u64`.
//!
//! The generator choice differs from upstream `rand` (which uses ChaCha12),
//! so absolute sample streams differ from a crates.io build; everything in
//! the workspace treats the stream as opaque, only requiring determinism
//! for a fixed seed, which this crate provides.

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64
    /// (the same convention upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || -> u64 {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

#[inline]
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    // Top 53 bits — the f64 mantissa width — give a uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Rejection-free widening multiply (Lemire) is overkill for
                // the spans used here; modulo bias at these span sizes is
                // far below every statistical tolerance in the workspace.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample empty or non-finite range"
        );
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end && start.is_finite() && end.is_finite(),
            "cannot sample empty or non-finite range"
        );
        start + (end - start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Convenience methods on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer or float range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same algorithm as upstream `StdRng` (ChaCha12); see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=4.0);
            assert!((-2.5..=4.0).contains(&y));
            let z = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_uniformish() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_500..31_500).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(19);
        let _ = rng.gen_range(5usize..5);
    }
}
