//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API the workspace's benches use — benchmark groups,
//! `Bencher::iter` / `iter_batched`, `sample_size`, the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement loop:
//! calibrate an iteration count to a minimum measurement window, take
//! several samples, report the median per-iteration time.
//!
//! Output goes to stdout, one line per benchmark. When the `BENCH_JSON`
//! environment variable names a file, one JSON object
//! `{"name": …, "ns_per_iter": …}` per benchmark is appended there (JSON
//! Lines, so the kernels and figures binaries can share one file); the
//! repo-root `BENCH_baseline.json` wraps such a dump with metadata.
//!
//! Not implemented (silently absent, not stubbed with panics): statistical
//! outlier analysis, HTML reports, comparison against saved baselines.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum time one measurement sample should cover.
const SAMPLE_WINDOW: Duration = Duration::from_millis(20);
/// Measurement samples per benchmark (median is reported).
const SAMPLES: usize = 7;

/// How batched inputs are grouped; only the call shape is honored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement driver passed to bench closures.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double the iteration count until one batch fills the
        // sample window (slow routines settle at 1 iteration immediately).
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= SAMPLE_WINDOW || n >= 1 << 24 {
                break;
            }
            n = if elapsed.is_zero() {
                n * 16
            } else {
                (n * 2).max((n as f64 * SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64()) as u64)
            };
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / n as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One timed call per sample; setup stays outside the timer.
        let mut samples: Vec<f64> = Vec::new();
        while samples.len() < SAMPLES {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub ns_per_iter: f64,
}

/// The harness entry object handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        println!("bench: {name:<50} {:>14}/iter", format_ns(b.ns_per_iter));
        self.results.push(Measurement {
            name,
            ns_per_iter: b.ns_per_iter,
        });
    }

    /// Honors `BENCH_JSON`: appends one JSON object per benchmark, one per
    /// line (JSON Lines — append-safe when several bench binaries share a
    /// target file).
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                let mut out = String::new();
                for m in &self.results {
                    out.push_str(&format!(
                        "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}\n",
                        m.name, m.ns_per_iter
                    ));
                }
                if let Err(e) = append_json(&path, &out) {
                    eprintln!("criterion stub: cannot write {path}: {e}");
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn append_json(path: &str, content: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(content.as_bytes())
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.into());
        self.criterion.run_one(name, f);
        self
    }

    /// Ends the group (no-op; recorded results live on the `Criterion`).
    pub fn finish(self) {}
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); the stub
            // runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter.is_finite());
        assert!(c.results[0].ns_per_iter > 0.0);
        assert_eq!(c.results[0].name, "g/sum");
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1.0f64; 256],
                |v| v.iter().sum::<f64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(c.results[0].ns_per_iter.is_finite());
    }
}
