#!/usr/bin/env python3
"""Compare two BENCH_*.json files and report per-group deltas.

Usage:
    python3 scripts/bench_diff.py BASELINE.json CURRENT.json
        [--fail-regression GLOB] [--threshold PCT]

Prints one line per benchmark present in both files (delta < 0 means the
current run is faster) plus a per-group geometric-mean summary. The report
is advisory except for benchmarks matching ``--fail-regression`` — a
comma-separated glob list, default ``discrete-rv/*,mc-engine/*,
makespan-evaluators/mc-*,eval-service/*,ext-traces/*,dynamic/*,adversarial/*``:
if any of those
regressed by more than ``--threshold`` percent (default 25), the script
exits non-zero.

Both files must come from the same machine for the comparison to mean
anything; the script warns when the recorded environments differ.
"""

import argparse
import fnmatch
import json
import math
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    return doc, {b["name"]: float(b["ns_per_iter"]) for b in doc.get("benchmarks", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--fail-regression",
        default="discrete-rv/*,mc-engine/*,makespan-evaluators/mc-*,eval-service/*,ext-traces/*,dynamic/*,adversarial/*",
        help="comma-separated globs of benchmark names whose regression fails the check",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="regression percentage that turns advisory into failure",
    )
    args = ap.parse_args()

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    base_env = base_doc.get("environment", {})
    cur_env = cur_doc.get("environment", {})
    if base_env.get("cpu") != cur_env.get("cpu"):
        print(
            f"WARNING: environments differ ({base_env.get('cpu')} vs "
            f"{cur_env.get('cpu')}); deltas are not comparable.",
            file=sys.stderr,
        )

    shared = [name for name in base if name in cur]
    missing = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    if not shared:
        print("ERROR: no common benchmarks between the two files", file=sys.stderr)
        return 2

    groups = {}
    failures = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name in shared:
        b, c = base[name], cur[name]
        delta = (c - b) / b * 100.0
        print(f"{name:<{width}}  {b:>10.0f}ns  {c:>10.0f}ns  {delta:>+7.1f}%")
        group = name.split("/")[0]
        groups.setdefault(group, []).append(c / b)
        guarded = any(
            fnmatch.fnmatch(name, pat.strip())
            for pat in args.fail_regression.split(",")
            if pat.strip()
        )
        if guarded and delta > args.threshold:
            failures.append((name, delta))

    print()
    print("per-group geometric-mean ratio (current / baseline; < 1 is faster):")
    for group in sorted(groups):
        ratios = groups[group]
        gm = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        speedup = 1.0 / gm if gm > 0 else float("inf")
        print(f"  {group:<24} {gm:6.3f}  ({speedup:.2f}x)")

    for name in missing:
        print(f"note: '{name}' only in baseline")
    for name in added:
        print(f"note: '{name}' only in current")

    if failures:
        print(file=sys.stderr)
        for name, delta in failures:
            print(
                f"FAIL: {name} regressed {delta:+.1f}% "
                f"(> {args.threshold:.0f}% threshold)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
